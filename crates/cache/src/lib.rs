#![warn(missing_docs)]
//! The shared block cache (buffer pool).
//!
//! Clio "is able to use much of the existing mechanism of the file server,
//! such as the buffer pool" (§2) — the same cache serves the conventional
//! file system and the log service. Because log blocks are immutable once
//! sealed (the medium is write-once), the cache is a pure read cache with
//! write-through on append: there are no dirty pages and no write-back
//! machinery. Hit/miss statistics feed the Table 1 and §4 cache analyses.
//!
//! Immutability also makes the cache embarrassingly shardable: a block
//! image never changes after insertion, so the only mutable state is
//! recency, which is private to each shard. [`BlockCache::with_shards`]
//! splits the key space over N power-of-two LRU shards with per-shard
//! locks so concurrent readers touching different blocks never contend.
//! [`BlockCache::new`] keeps the single-shard (exact global LRU)
//! behaviour for cache-behaviour experiments that must stay reproducible.

use clio_testkit::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use clio_obs::TraceRing;
use clio_testkit::sync::{Condvar, Mutex};

use clio_types::{BlockNo, Result};

/// Identifies a cached device (assigned by the volume layer).
pub type DeviceId = u32;

/// A cache key: one block of one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Which device.
    pub device: DeviceId,
    /// Which block.
    pub block: BlockNo,
}

impl CacheKey {
    /// Convenience constructor.
    #[must_use]
    pub fn new(device: DeviceId, block: BlockNo) -> CacheKey {
        CacheKey { device, block }
    }

    /// A well-mixed 64-bit hash used to pick a shard (SplitMix64 finisher
    /// over the device/block pair, so consecutive blocks spread evenly).
    fn shard_hash(self) -> u64 {
        let mut x =
            (u64::from(self.device) << 48) ^ self.block.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

/// Per-shard statistics counters (shared-cache totals are their sum).
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time copy of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to go to the device.
    pub misses: u64,
    /// Blocks inserted.
    pub inserts: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
    /// Concurrent `get_or_load` misses coalesced onto another thread's
    /// in-flight load instead of loading again (single-flight).
    pub duplicate_loads: u64,
}

impl CacheSnapshot {
    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} hit_ratio={:.1}% inserts={} evictions={}",
            self.hits,
            self.misses,
            100.0 * self.hit_ratio(),
            self.inserts,
            self.evictions
        )
    }
}

struct Entry {
    data: Arc<Vec<u8>>,
    tick: u64,
}

struct Lru {
    map: HashMap<CacheKey, Entry>,
    by_tick: std::collections::BTreeMap<u64, CacheKey>,
    next_tick: u64,
}

impl Lru {
    fn empty() -> Lru {
        Lru {
            map: HashMap::new(),
            by_tick: std::collections::BTreeMap::new(),
            next_tick: 0,
        }
    }

    fn touch(&mut self, key: CacheKey) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(e) = self.map.get_mut(&key) {
            self.by_tick.remove(&e.tick);
            e.tick = tick;
            self.by_tick.insert(tick, key);
        }
    }
}

/// One LRU shard: a slice of the capacity with its own lock and counters.
struct Shard {
    inner: Mutex<Lru>,
    capacity: usize,
    counters: Counters,
}

/// The state of one in-flight `get_or_load` for a key.
enum FlightState {
    /// The leader is still loading.
    Pending,
    /// The leader finished: `Some` with the block, `None` if the load
    /// failed (waiters retry, becoming leaders themselves).
    Done(Option<Arc<Vec<u8>>>),
}

/// A single-flight rendezvous: losers of the leader race park here.
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

/// A fixed-capacity LRU cache of immutable block images, sharded for
/// concurrent readers.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use clio_cache::{BlockCache, CacheKey};
/// use clio_types::BlockNo;
///
/// let cache = BlockCache::new(2);
/// cache.put(CacheKey::new(0, BlockNo(1)), Arc::new(vec![1, 2, 3]));
/// assert!(cache.get(CacheKey::new(0, BlockNo(1))).is_some());
/// assert!(cache.get(CacheKey::new(0, BlockNo(9))).is_none());
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct BlockCache {
    shards: Box<[Shard]>,
    /// `shards.len() - 1`; shard count is always a power of two.
    mask: u64,
    capacity: usize,
    /// Total resident blocks, maintained alongside the per-shard maps so
    /// [`BlockCache::len`] never takes a lock.
    resident: AtomicUsize,
    duplicate_loads: AtomicU64,
    inflight: Mutex<HashMap<CacheKey, Arc<Flight>>>,
    /// When attached, single-flight loads record `cache_load` /
    /// `cache_wait` spans, nesting under the reading operation's span.
    trace: OnceLock<Arc<TraceRing>>,
}

impl BlockCache {
    /// Creates a single-shard cache holding at most `capacity_blocks`
    /// blocks — exact global LRU, the reproducible-experiment mode.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_blocks` is zero — a cacheless configuration
    /// should bypass the cache, not construct a degenerate one.
    #[must_use]
    pub fn new(capacity_blocks: usize) -> BlockCache {
        BlockCache::with_shards(capacity_blocks, 1)
    }

    /// Creates a cache of `capacity_blocks` split over `shards` LRU
    /// shards. The shard count is rounded up to a power of two and
    /// clamped so every shard holds at least one block.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_blocks` or `shards` is zero.
    #[must_use]
    pub fn with_shards(capacity_blocks: usize, shards: usize) -> BlockCache {
        assert!(capacity_blocks > 0, "cache capacity must be positive");
        assert!(shards > 0, "shard count must be positive");
        let mut n = shards.next_power_of_two();
        while n > 1 && capacity_blocks / n == 0 {
            n /= 2;
        }
        let base = capacity_blocks / n;
        let rem = capacity_blocks % n;
        let shards: Vec<Shard> = (0..n)
            .map(|i| Shard {
                inner: Mutex::with_class(Lru::empty(), "cache.shard"),
                capacity: base + usize::from(i < rem),
                counters: Counters::default(),
            })
            .collect();
        BlockCache {
            shards: shards.into_boxed_slice(),
            mask: (n - 1) as u64,
            capacity: capacity_blocks,
            resident: AtomicUsize::new(0),
            duplicate_loads: AtomicU64::new(0),
            inflight: Mutex::with_class(HashMap::new(), "cache.inflight"),
            trace: OnceLock::new(),
        }
    }

    /// Attaches a trace ring so single-flight loads record spans. First
    /// attach wins; later calls are ignored.
    pub fn attach_trace(&self, ring: Arc<TraceRing>) {
        let _ = self.trace.set(ring);
    }

    /// Opens a span when a trace ring is attached.
    fn load_span(&self, name: &'static str) -> Option<clio_obs::SpanGuard<'_>> {
        Some(self.trace.get()?.span(name))
    }

    fn shard(&self, key: CacheKey) -> &Shard {
        &self.shards[(key.shard_hash() & self.mask) as usize]
    }

    /// Number of blocks currently cached (lock-free).
    #[must_use]
    pub fn len(&self) -> usize {
        self.resident.load(Ordering::Relaxed)
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity in blocks.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The number of LRU shards (1 = exact global LRU).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Looks up a block, updating recency and hit/miss counters.
    #[must_use]
    pub fn get(&self, key: CacheKey) -> Option<Arc<Vec<u8>>> {
        let shard = self.shard(key);
        let mut g = shard.inner.lock();
        if let Some(e) = g.map.get(&key) {
            let data = e.data.clone();
            g.touch(key);
            shard.counters.hits.fetch_add(1, Ordering::Relaxed);
            Some(data)
        } else {
            shard.counters.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Inserts (or replaces) a block, evicting the shard's least recently
    /// used block if the shard is full.
    pub fn put(&self, key: CacheKey, data: Arc<Vec<u8>>) {
        let shard = self.shard(key);
        let mut g = shard.inner.lock();
        let tick = g.next_tick;
        g.next_tick += 1;
        if let Some(old) = g.map.insert(key, Entry { data, tick }) {
            g.by_tick.remove(&old.tick);
        } else {
            self.resident.fetch_add(1, Ordering::Relaxed);
        }
        g.by_tick.insert(tick, key);
        shard.counters.inserts.fetch_add(1, Ordering::Relaxed);
        while g.map.len() > shard.capacity {
            let Some((&t, &victim)) = g.by_tick.iter().next() else {
                break;
            };
            g.by_tick.remove(&t);
            g.map.remove(&victim);
            self.resident.fetch_sub(1, Ordering::Relaxed);
            shard.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Looks up a block, loading and inserting it on a miss.
    ///
    /// Concurrent misses on the same key are coalesced (single-flight):
    /// one caller runs `load`, the rest wait and share its block. The
    /// avoided loads are counted in [`CacheSnapshot::duplicate_loads`].
    /// If the leader's load fails, each waiter retries — one of them
    /// becomes the new leader.
    pub fn get_or_load<F>(&self, key: CacheKey, load: F) -> Result<Arc<Vec<u8>>>
    where
        F: FnMut() -> Result<Vec<u8>>,
    {
        let mut load = load;
        loop {
            if let Some(hit) = self.get(key) {
                return Ok(hit);
            }
            let (flight, leader) = {
                let mut g = self.inflight.lock();
                match g.get(&key) {
                    Some(f) => (f.clone(), false),
                    None => {
                        let f = Arc::new(Flight {
                            state: Mutex::with_class(FlightState::Pending, "cache.flight"),
                            cv: Condvar::new(),
                        });
                        g.insert(key, f.clone());
                        (f, true)
                    }
                }
            };
            if leader {
                let mut span = self.load_span("cache_load");
                let loaded = load();
                if loaded.is_err() {
                    if let Some(s) = &mut span {
                        s.fail("load_error");
                    }
                }
                drop(span);
                let outcome = loaded.as_ref().ok().cloned().map(Arc::new);
                if let Some(data) = &outcome {
                    self.put(key, data.clone());
                }
                self.inflight.lock().remove(&key);
                *flight.state.lock() = FlightState::Done(outcome.clone());
                flight.cv.notify_all();
                return match (outcome, loaded) {
                    (Some(data), _) => Ok(data),
                    (None, Err(e)) => Err(e),
                    (None, Ok(_)) => unreachable!("outcome mirrors loaded"),
                };
            }
            // Loser: without single-flight this would have been a second
            // load of the same block. The span drops after `g` releases
            // the flight lock (reverse declaration order), so the ring
            // mutex is only ever taken with no other lock held here.
            self.duplicate_loads.fetch_add(1, Ordering::Relaxed);
            let _span = self.load_span("cache_wait");
            let g = flight
                .cv
                .wait_while(flight.state.lock(), |s| matches!(s, FlightState::Pending));
            match &*g {
                FlightState::Done(Some(data)) => return Ok(data.clone()),
                // Leader failed; retry (and possibly lead) ourselves.
                FlightState::Done(None) => continue,
                FlightState::Pending => unreachable!("wait_while guarantees Done"),
            }
        }
    }

    /// Drops one block (e.g. after invalidating it on the device).
    pub fn invalidate(&self, key: CacheKey) {
        let shard = self.shard(key);
        let mut g = shard.inner.lock();
        if let Some(e) = g.map.remove(&key) {
            g.by_tick.remove(&e.tick);
            self.resident.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Drops everything (a simulated server crash loses the cache).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut g = shard.inner.lock();
            self.resident.fetch_sub(g.map.len(), Ordering::Relaxed);
            g.map.clear();
            g.by_tick.clear();
        }
    }

    /// Copies the statistics counters (summed over shards).
    #[must_use]
    pub fn stats(&self) -> CacheSnapshot {
        let mut s = CacheSnapshot {
            duplicate_loads: self.duplicate_loads.load(Ordering::Relaxed),
            ..CacheSnapshot::default()
        };
        for shard in &self.shards {
            s.hits += shard.counters.hits.load(Ordering::Relaxed);
            s.misses += shard.counters.misses.load(Ordering::Relaxed);
            s.inserts += shard.counters.inserts.load(Ordering::Relaxed);
            s.evictions += shard.counters.evictions.load(Ordering::Relaxed);
        }
        s
    }

    /// The statistics of one shard (for contention analysis).
    #[must_use]
    pub fn shard_stats(&self, index: usize) -> CacheSnapshot {
        let shard = &self.shards[index];
        CacheSnapshot {
            hits: shard.counters.hits.load(Ordering::Relaxed),
            misses: shard.counters.misses.load(Ordering::Relaxed),
            inserts: shard.counters.inserts.load(Ordering::Relaxed),
            evictions: shard.counters.evictions.load(Ordering::Relaxed),
            duplicate_loads: 0,
        }
    }

    /// Resident blocks in one shard (takes that shard's lock only).
    #[must_use]
    pub fn shard_len(&self, index: usize) -> usize {
        self.shards[index].inner.lock().map.len()
    }

    /// Registers the cache counters and occupancy into `reg` under the
    /// `clio_cache_*` namespace, including a per-shard collector set
    /// (`clio_cache_shard<i>_*`) when the cache has more than one shard.
    pub fn register_into(self: &Arc<BlockCache>, reg: &clio_obs::MetricsRegistry) {
        type Field = fn(&CacheSnapshot) -> u64;
        let counters: [(&str, Field); 5] = [
            ("clio_cache_hits_total", |s| s.hits),
            ("clio_cache_misses_total", |s| s.misses),
            ("clio_cache_inserts_total", |s| s.inserts),
            ("clio_cache_evictions_total", |s| s.evictions),
            ("clio_cache_duplicate_loads_total", |s| s.duplicate_loads),
        ];
        for (name, read) in counters {
            let cache = self.clone();
            reg.register_counter_fn(name, move || read(&cache.stats()));
        }
        let cache = self.clone();
        reg.register_gauge_fn("clio_cache_resident_blocks", move || cache.len() as i64);
        let cap = self.capacity() as i64;
        reg.register_gauge_fn("clio_cache_capacity_blocks", move || cap);
        let n = self.shard_count() as i64;
        reg.register_gauge_fn("clio_cache_shards", move || n);
        if self.shard_count() > 1 {
            for i in 0..self.shard_count() {
                let cache = self.clone();
                reg.register_counter_fn(&format!("clio_cache_shard{i}_hits_total"), move || {
                    cache.shard_stats(i).hits
                });
                let cache = self.clone();
                reg.register_counter_fn(&format!("clio_cache_shard{i}_misses_total"), move || {
                    cache.shard_stats(i).misses
                });
                let cache = self.clone();
                reg.register_gauge_fn(&format!("clio_cache_shard{i}_resident_blocks"), move || {
                    cache.shard_len(i) as i64
                });
            }
        }
    }

    /// Zeroes the statistics counters (contents are untouched).
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.counters.hits.store(0, Ordering::Relaxed);
            shard.counters.misses.store(0, Ordering::Relaxed);
            shard.counters.inserts.store(0, Ordering::Relaxed);
            shard.counters.evictions.store(0, Ordering::Relaxed);
        }
        self.duplicate_loads.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u64) -> CacheKey {
        CacheKey::new(0, BlockNo(b))
    }

    fn data(b: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![b; 8])
    }

    #[test]
    fn put_get_round_trip() {
        let c = BlockCache::new(4);
        c.put(key(1), data(1));
        assert_eq!(c.get(key(1)).unwrap()[0], 1);
        assert!(c.get(key(2)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let c = BlockCache::new(3);
        c.put(key(1), data(1));
        c.put(key(2), data(2));
        c.put(key(3), data(3));
        // Touch 1 so 2 becomes the LRU victim.
        let _ = c.get(key(1));
        c.put(key(4), data(4));
        assert!(c.get(key(2)).is_none(), "2 should have been evicted");
        assert!(c.get(key(1)).is_some());
        assert!(c.get(key(3)).is_some());
        assert!(c.get(key(4)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn replacing_a_key_does_not_grow() {
        let c = BlockCache::new(2);
        c.put(key(1), data(1));
        c.put(key(1), data(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(key(1)).unwrap()[0], 9);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn get_or_load_loads_once() {
        let c = BlockCache::new(4);
        let mut loads = 0;
        for _ in 0..3 {
            let v = c
                .get_or_load(key(7), || {
                    loads += 1;
                    Ok(vec![7u8; 4])
                })
                .unwrap();
            assert_eq!(v[0], 7);
        }
        assert_eq!(loads, 1);
        let s = c.stats();
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn load_errors_propagate_and_cache_nothing() {
        let c = BlockCache::new(4);
        let r = c.get_or_load(key(9), || Err(clio_types::ClioError::VolumeFull));
        assert!(r.is_err());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn invalidate_and_clear() {
        let c = BlockCache::new(4);
        c.put(key(1), data(1));
        c.put(key(2), data(2));
        c.invalidate(key(1));
        assert!(c.get(key(1)).is_none());
        assert!(c.get(key(2)).is_some());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn devices_are_distinct() {
        let c = BlockCache::new(4);
        c.put(CacheKey::new(0, BlockNo(1)), data(1));
        c.put(CacheKey::new(1, BlockNo(1)), data(2));
        assert_eq!(c.get(CacheKey::new(0, BlockNo(1))).unwrap()[0], 1);
        assert_eq!(c.get(CacheKey::new(1, BlockNo(1))).unwrap()[0], 2);
    }

    #[test]
    fn hit_ratio() {
        let c = BlockCache::new(4);
        c.put(key(1), data(1));
        let _ = c.get(key(1));
        let _ = c.get(key(1));
        let _ = c.get(key(2));
        let s = c.stats();
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(CacheSnapshot::default().hit_ratio(), 0.0);
    }

    #[test]
    fn registers_into_a_registry_and_displays() {
        let c = Arc::new(BlockCache::new(4));
        let reg = clio_obs::MetricsRegistry::new();
        c.register_into(&reg);
        c.put(key(1), data(1));
        let _ = c.get(key(1));
        let _ = c.get(key(2));
        let text = clio_obs::expo::render_prometheus(&reg);
        assert!(text.contains("clio_cache_hits_total 1"));
        assert!(text.contains("clio_cache_misses_total 1"));
        assert!(text.contains("clio_cache_resident_blocks 1"));
        assert!(text.contains("clio_cache_capacity_blocks 4"));
        assert!(text.contains("clio_cache_shards 1"));
        let line = format!("{}", c.stats());
        assert!(line.contains("hits=1"));
        assert!(line.contains("hit_ratio=50.0%"));
    }

    #[test]
    fn heavy_churn_respects_capacity() {
        let c = BlockCache::new(16);
        for i in 0..10_000u64 {
            c.put(key(i), data((i % 251) as u8));
        }
        assert_eq!(c.len(), 16);
        // The survivors are the 16 most recent.
        for i in 10_000 - 16..10_000 {
            assert!(c.get(key(i)).is_some(), "block {i} missing");
        }
    }

    // ---------------- sharded mode ----------------

    #[test]
    fn shard_count_rounds_and_clamps() {
        assert_eq!(BlockCache::with_shards(64, 8).shard_count(), 8);
        assert_eq!(BlockCache::with_shards(64, 5).shard_count(), 8);
        // Too few blocks for 8 shards: clamp so every shard holds >= 1.
        assert_eq!(BlockCache::with_shards(4, 8).shard_count(), 4);
        assert_eq!(BlockCache::with_shards(1, 8).shard_count(), 1);
        assert_eq!(BlockCache::new(16).shard_count(), 1);
    }

    #[test]
    fn sharded_capacity_is_partitioned_exactly() {
        let c = BlockCache::with_shards(13, 4);
        let total: usize = c.shards.iter().map(|s| s.capacity).sum();
        assert_eq!(total, 13);
        assert!(c.shards.iter().all(|s| s.capacity >= 3));
    }

    #[test]
    fn sharded_round_trip_and_len() {
        // Per-shard capacity (384/8 = 48) covers every key even if the
        // hash lands them all in one shard, so nothing can be evicted.
        let c = BlockCache::with_shards(384, 8);
        for i in 0..48u64 {
            c.put(key(i), data(i as u8));
        }
        assert_eq!(c.len(), 48);
        for i in 0..48u64 {
            assert_eq!(c.get(key(i)).unwrap()[0], i as u8, "block {i}");
        }
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (48, 0, 48));
        c.clear();
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn sharded_churn_never_exceeds_capacity() {
        let c = BlockCache::with_shards(32, 4);
        for i in 0..10_000u64 {
            c.put(key(i), data((i % 251) as u8));
        }
        assert!(c.len() <= 32, "len {} over capacity", c.len());
        assert!(c.len() >= 4, "every shard should retain something");
        // Per-shard stats sum to the totals.
        let total: u64 = (0..c.shard_count()).map(|i| c.shard_stats(i).inserts).sum();
        assert_eq!(total, c.stats().inserts);
    }

    #[test]
    fn sharded_parallel_readers_agree() {
        // 2048/8 = 256 per shard: all 256 keys fit in any one shard, so
        // the uneven hash spread cannot evict anything.
        let c = Arc::new(BlockCache::with_shards(2048, 8));
        for i in 0..256u64 {
            c.put(key(i), data((i % 251) as u8));
        }
        let mut handles = Vec::new();
        for t in 0..4 {
            let c = c.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..1_000u64 {
                    let i = (round * 7 + t * 13) % 256;
                    assert_eq!(c.get(key(i)).unwrap()[0], (i % 251) as u8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.stats().hits, 4_000);
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn single_flight_coalesces_concurrent_misses() {
        use std::sync::mpsc;
        let c = Arc::new(BlockCache::with_shards(16, 4));
        let (loading_tx, loading_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let c1 = c.clone();
        let leader = std::thread::spawn(move || {
            c1.get_or_load(key(3), || {
                loading_tx.send(()).unwrap();
                release_rx.recv().unwrap();
                Ok(vec![42u8; 4])
            })
            .unwrap()
        });
        // Wait until the leader is inside its load, then race it.
        loading_rx.recv().unwrap();
        let c2 = c.clone();
        let loser = std::thread::spawn(move || {
            c2.get_or_load(key(3), || panic!("loser must never load"))
                .unwrap()
        });
        // Give the loser time to park on the flight, then release.
        while c.stats().duplicate_loads == 0 {
            std::thread::yield_now();
        }
        release_tx.send(()).unwrap();
        assert_eq!(leader.join().unwrap()[0], 42);
        assert_eq!(loser.join().unwrap()[0], 42);
        let s = c.stats();
        assert_eq!(s.duplicate_loads, 1, "exactly one avoided load");
        assert_eq!(s.inserts, 1, "the block was loaded and inserted once");
    }

    #[test]
    fn single_flight_failed_leader_lets_waiter_retry() {
        use std::sync::mpsc;
        let c = Arc::new(BlockCache::with_shards(16, 4));
        let (loading_tx, loading_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        let c1 = c.clone();
        let leader = std::thread::spawn(move || {
            c1.get_or_load(key(5), || {
                loading_tx.send(()).unwrap();
                release_rx.recv().unwrap();
                Err(clio_types::ClioError::VolumeFull)
            })
        });
        loading_rx.recv().unwrap();
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || c2.get_or_load(key(5), || Ok(vec![7u8; 4])));
        while c.stats().duplicate_loads == 0 {
            std::thread::yield_now();
        }
        release_tx.send(()).unwrap();
        assert!(leader.join().unwrap().is_err());
        // The waiter retried after the leader's failure and loaded itself.
        assert_eq!(waiter.join().unwrap().unwrap()[0], 7);
        assert_eq!(c.get(key(5)).unwrap()[0], 7);
    }

    #[test]
    fn attached_trace_records_load_spans_under_parent() {
        let c = BlockCache::new(4);
        let ring = Arc::new(TraceRing::new(8));
        c.attach_trace(ring.clone());
        {
            let _read = ring.span("read");
            let _ = c.get_or_load(key(2), || Ok(vec![2u8; 4])).unwrap();
        }
        let spans = ring.snapshot();
        let load = spans
            .iter()
            .find(|s| s.name == "cache_load")
            .expect("load span");
        let read = spans.iter().find(|s| s.name == "read").expect("read span");
        assert_eq!(load.parent, Some(read.id), "load nests under the read");
        // A failed load keeps its outcome.
        let _ = c.get_or_load(key(9), || Err(clio_types::ClioError::VolumeFull));
        let spans = ring.snapshot();
        let failed = spans.iter().rfind(|s| s.name == "cache_load").unwrap();
        assert_eq!(failed.outcome, "load_error");
    }

    #[test]
    fn sharded_registry_exposes_shard_collectors() {
        let c = Arc::new(BlockCache::with_shards(64, 4));
        let reg = clio_obs::MetricsRegistry::new();
        c.register_into(&reg);
        for i in 0..32u64 {
            c.put(key(i), data(1));
            let _ = c.get(key(i));
        }
        let text = clio_obs::expo::render_prometheus(&reg);
        assert!(text.contains("clio_cache_shards 4"));
        assert!(text.contains("clio_cache_shard0_hits_total"));
        assert!(text.contains("clio_cache_shard3_resident_blocks"));
        assert!(text.contains("clio_cache_duplicate_loads_total 0"));
        assert!(text.contains("clio_cache_hits_total 32"));
    }
}
