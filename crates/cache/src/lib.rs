#![warn(missing_docs)]
//! The shared block cache (buffer pool).
//!
//! Clio "is able to use much of the existing mechanism of the file server,
//! such as the buffer pool" (§2) — the same cache serves the conventional
//! file system and the log service. Because log blocks are immutable once
//! sealed (the medium is write-once), the cache is a pure read cache with
//! write-through on append: there are no dirty pages and no write-back
//! machinery. Hit/miss statistics feed the Table 1 and §4 cache analyses.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clio_testkit::sync::Mutex;

use clio_types::{BlockNo, Result};

/// Identifies a cached device (assigned by the volume layer).
pub type DeviceId = u32;

/// A cache key: one block of one device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Which device.
    pub device: DeviceId,
    /// Which block.
    pub block: BlockNo,
}

impl CacheKey {
    /// Convenience constructor.
    #[must_use]
    pub fn new(device: DeviceId, block: BlockNo) -> CacheKey {
        CacheKey { device, block }
    }
}

/// Cache statistics counters.
#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

/// A point-in-time copy of the cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to go to the device.
    pub misses: u64,
    /// Blocks inserted.
    pub inserts: u64,
    /// Blocks evicted to make room.
    pub evictions: u64,
}

impl CacheSnapshot {
    /// Hit ratio in `[0, 1]`; 0 when no lookups happened.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl std::fmt::Display for CacheSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hits={} misses={} hit_ratio={:.1}% inserts={} evictions={}",
            self.hits,
            self.misses,
            100.0 * self.hit_ratio(),
            self.inserts,
            self.evictions
        )
    }
}

struct Entry {
    data: Arc<Vec<u8>>,
    tick: u64,
}

struct Lru {
    map: HashMap<CacheKey, Entry>,
    by_tick: std::collections::BTreeMap<u64, CacheKey>,
    next_tick: u64,
}

impl Lru {
    fn touch(&mut self, key: CacheKey) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(e) = self.map.get_mut(&key) {
            self.by_tick.remove(&e.tick);
            e.tick = tick;
            self.by_tick.insert(tick, key);
        }
    }
}

/// A fixed-capacity LRU cache of immutable block images.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use clio_cache::{BlockCache, CacheKey};
/// use clio_types::BlockNo;
///
/// let cache = BlockCache::new(2);
/// cache.put(CacheKey::new(0, BlockNo(1)), Arc::new(vec![1, 2, 3]));
/// assert!(cache.get(CacheKey::new(0, BlockNo(1))).is_some());
/// assert!(cache.get(CacheKey::new(0, BlockNo(9))).is_none());
/// assert_eq!(cache.stats().hits, 1);
/// ```
pub struct BlockCache {
    inner: Mutex<Lru>,
    capacity: usize,
    counters: Counters,
}

impl BlockCache {
    /// Creates a cache holding at most `capacity_blocks` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_blocks` is zero — a cacheless configuration
    /// should bypass the cache, not construct a degenerate one.
    #[must_use]
    pub fn new(capacity_blocks: usize) -> BlockCache {
        assert!(capacity_blocks > 0, "cache capacity must be positive");
        BlockCache {
            inner: Mutex::new(Lru {
                map: HashMap::new(),
                by_tick: std::collections::BTreeMap::new(),
                next_tick: 0,
            }),
            capacity: capacity_blocks,
            counters: Counters::default(),
        }
    }

    /// Number of blocks currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity in blocks.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a block, updating recency and hit/miss counters.
    #[must_use]
    pub fn get(&self, key: CacheKey) -> Option<Arc<Vec<u8>>> {
        let mut g = self.inner.lock();
        if let Some(e) = g.map.get(&key) {
            let data = e.data.clone();
            g.touch(key);
            self.counters.hits.fetch_add(1, Ordering::Relaxed);
            Some(data)
        } else {
            self.counters.misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }

    /// Inserts (or replaces) a block, evicting the least recently used
    /// block if the cache is full.
    pub fn put(&self, key: CacheKey, data: Arc<Vec<u8>>) {
        let mut g = self.inner.lock();
        let tick = g.next_tick;
        g.next_tick += 1;
        if let Some(old) = g.map.insert(key, Entry { data, tick }) {
            g.by_tick.remove(&old.tick);
        }
        g.by_tick.insert(tick, key);
        self.counters.inserts.fetch_add(1, Ordering::Relaxed);
        while g.map.len() > self.capacity {
            let Some((&t, &victim)) = g.by_tick.iter().next() else {
                break;
            };
            g.by_tick.remove(&t);
            g.map.remove(&victim);
            self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Looks up a block, loading and inserting it on a miss.
    pub fn get_or_load<F>(&self, key: CacheKey, load: F) -> Result<Arc<Vec<u8>>>
    where
        F: FnOnce() -> Result<Vec<u8>>,
    {
        if let Some(hit) = self.get(key) {
            return Ok(hit);
        }
        let data = Arc::new(load()?);
        self.put(key, data.clone());
        Ok(data)
    }

    /// Drops one block (e.g. after invalidating it on the device).
    pub fn invalidate(&self, key: CacheKey) {
        let mut g = self.inner.lock();
        if let Some(e) = g.map.remove(&key) {
            g.by_tick.remove(&e.tick);
        }
    }

    /// Drops everything (a simulated server crash loses the cache).
    pub fn clear(&self) {
        let mut g = self.inner.lock();
        g.map.clear();
        g.by_tick.clear();
    }

    /// Copies the statistics counters.
    #[must_use]
    pub fn stats(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            inserts: self.counters.inserts.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
        }
    }

    /// Registers the cache counters and occupancy into `reg` under the
    /// `clio_cache_*` namespace.
    pub fn register_into(self: &Arc<BlockCache>, reg: &clio_obs::MetricsRegistry) {
        let counters: [(&str, fn(&CacheSnapshot) -> u64); 4] = [
            ("clio_cache_hits_total", |s| s.hits),
            ("clio_cache_misses_total", |s| s.misses),
            ("clio_cache_inserts_total", |s| s.inserts),
            ("clio_cache_evictions_total", |s| s.evictions),
        ];
        for (name, read) in counters {
            let cache = self.clone();
            reg.register_counter_fn(name, move || read(&cache.stats()));
        }
        let cache = self.clone();
        reg.register_gauge_fn("clio_cache_resident_blocks", move || cache.len() as i64);
        let cap = self.capacity() as i64;
        reg.register_gauge_fn("clio_cache_capacity_blocks", move || cap);
    }

    /// Zeroes the statistics counters (contents are untouched).
    pub fn reset_stats(&self) {
        self.counters.hits.store(0, Ordering::Relaxed);
        self.counters.misses.store(0, Ordering::Relaxed);
        self.counters.inserts.store(0, Ordering::Relaxed);
        self.counters.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u64) -> CacheKey {
        CacheKey::new(0, BlockNo(b))
    }

    fn data(b: u8) -> Arc<Vec<u8>> {
        Arc::new(vec![b; 8])
    }

    #[test]
    fn put_get_round_trip() {
        let c = BlockCache::new(4);
        c.put(key(1), data(1));
        assert_eq!(c.get(key(1)).unwrap()[0], 1);
        assert!(c.get(key(2)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let c = BlockCache::new(3);
        c.put(key(1), data(1));
        c.put(key(2), data(2));
        c.put(key(3), data(3));
        // Touch 1 so 2 becomes the LRU victim.
        let _ = c.get(key(1));
        c.put(key(4), data(4));
        assert!(c.get(key(2)).is_none(), "2 should have been evicted");
        assert!(c.get(key(1)).is_some());
        assert!(c.get(key(3)).is_some());
        assert!(c.get(key(4)).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn replacing_a_key_does_not_grow() {
        let c = BlockCache::new(2);
        c.put(key(1), data(1));
        c.put(key(1), data(9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(key(1)).unwrap()[0], 9);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn get_or_load_loads_once() {
        let c = BlockCache::new(4);
        let mut loads = 0;
        for _ in 0..3 {
            let v = c
                .get_or_load(key(7), || {
                    loads += 1;
                    Ok(vec![7u8; 4])
                })
                .unwrap();
            assert_eq!(v[0], 7);
        }
        assert_eq!(loads, 1);
        let s = c.stats();
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn load_errors_propagate_and_cache_nothing() {
        let c = BlockCache::new(4);
        let r = c.get_or_load(key(9), || Err(clio_types::ClioError::VolumeFull));
        assert!(r.is_err());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn invalidate_and_clear() {
        let c = BlockCache::new(4);
        c.put(key(1), data(1));
        c.put(key(2), data(2));
        c.invalidate(key(1));
        assert!(c.get(key(1)).is_none());
        assert!(c.get(key(2)).is_some());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn devices_are_distinct() {
        let c = BlockCache::new(4);
        c.put(CacheKey::new(0, BlockNo(1)), data(1));
        c.put(CacheKey::new(1, BlockNo(1)), data(2));
        assert_eq!(c.get(CacheKey::new(0, BlockNo(1))).unwrap()[0], 1);
        assert_eq!(c.get(CacheKey::new(1, BlockNo(1))).unwrap()[0], 2);
    }

    #[test]
    fn hit_ratio() {
        let c = BlockCache::new(4);
        c.put(key(1), data(1));
        let _ = c.get(key(1));
        let _ = c.get(key(1));
        let _ = c.get(key(2));
        let s = c.stats();
        assert!((s.hit_ratio() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(CacheSnapshot::default().hit_ratio(), 0.0);
    }

    #[test]
    fn registers_into_a_registry_and_displays() {
        let c = Arc::new(BlockCache::new(4));
        let reg = clio_obs::MetricsRegistry::new();
        c.register_into(&reg);
        c.put(key(1), data(1));
        let _ = c.get(key(1));
        let _ = c.get(key(2));
        let text = clio_obs::expo::render_prometheus(&reg);
        assert!(text.contains("clio_cache_hits_total 1"));
        assert!(text.contains("clio_cache_misses_total 1"));
        assert!(text.contains("clio_cache_resident_blocks 1"));
        assert!(text.contains("clio_cache_capacity_blocks 4"));
        let line = format!("{}", c.stats());
        assert!(line.contains("hits=1"));
        assert!(line.contains("hit_ratio=50.0%"));
    }

    #[test]
    fn heavy_churn_respects_capacity() {
        let c = BlockCache::new(16);
        for i in 0..10_000u64 {
            c.put(key(i), data((i % 251) as u8));
        }
        assert_eq!(c.len(), 16);
        // The survivors are the 16 most recent.
        for i in 10_000 - 16..10_000 {
            assert!(c.get(key(i)).is_some(), "block {i} missing");
        }
    }
}
