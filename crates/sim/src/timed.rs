//! A log device that charges modelled time to a [`CostClock`].
//!
//! Wrapping a volume's device with [`TimedDevice`] makes every physical
//! access advance the virtual clock by the paper's optical-disk costs —
//! seek (~150 ms, §3.3.2) when the head moves, plus transfer. Benchmarks
//! then *measure* modelled latency by driving the real service and reading
//! the clock, instead of computing it from operation counts.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

use clio_device::{LogDevice, SharedDevice};
use clio_types::{BlockNo, Result};

use crate::cost::{CostClock, CostModel};

/// A [`LogDevice`] whose physical accesses advance a [`CostClock`].
pub struct TimedDevice {
    inner: SharedDevice,
    clock: Arc<CostClock>,
    model: CostModel,
    /// Head position; -1 = unknown (first access always seeks).
    head: AtomicI64,
    /// Optional distribution of modelled per-access cost in µs.
    latency_us: Option<Arc<clio_obs::Histogram>>,
}

impl TimedDevice {
    /// Wraps `inner`, charging `model` costs to `clock`.
    #[must_use]
    pub fn new(inner: SharedDevice, clock: Arc<CostClock>, model: CostModel) -> TimedDevice {
        TimedDevice {
            inner,
            clock,
            model,
            head: AtomicI64::new(-1),
            latency_us: None,
        }
    }

    /// Also records every access's modelled cost (µs) into `hist`, so
    /// benches can report the *distribution* of modelled latency (seek vs.
    /// sequential) rather than just the total.
    #[must_use]
    pub fn with_latency_histogram(mut self, hist: Arc<clio_obs::Histogram>) -> TimedDevice {
        self.latency_us = Some(hist);
        self
    }

    fn charge_access(&self, block: BlockNo) {
        let pos = block.0 as i64;
        let prev = self.head.swap(pos, Ordering::Relaxed);
        // Sequential access (same or next block) skips the seek, like a
        // head already on track; everything else pays the average seek.
        let mut cost = self.model.optical_transfer_us;
        if prev < 0 || (pos - prev).unsigned_abs() > 1 {
            cost += self.model.optical_seek_us;
        }
        self.clock.charge(cost);
        if let Some(h) = &self.latency_us {
            h.record(cost);
        }
    }
}

impl LogDevice for TimedDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn capacity_blocks(&self) -> u64 {
        self.inner.capacity_blocks()
    }

    fn query_end(&self) -> Option<BlockNo> {
        self.inner.query_end()
    }

    fn is_written(&self, block: BlockNo) -> Result<bool> {
        self.charge_access(block);
        self.inner.is_written(block)
    }

    fn append_block(&self, expected: BlockNo, data: &[u8]) -> Result<()> {
        self.charge_access(expected);
        self.inner.append_block(expected, data)
    }

    fn read_block(&self, block: BlockNo, buf: &mut [u8]) -> Result<()> {
        self.charge_access(block);
        self.inner.read_block(block, buf)
    }

    fn invalidate_block(&self, block: BlockNo) -> Result<()> {
        self.charge_access(block);
        self.inner.invalidate_block(block)
    }

    fn rewrite_tail(&self, block: BlockNo, data: &[u8]) -> Result<()> {
        // Tail rewrites hit battery-backed RAM, not the medium: no charge.
        self.inner.rewrite_tail(block, data)
    }

    fn supports_tail_rewrite(&self) -> bool {
        self.inner.supports_tail_rewrite()
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use clio_device::MemWormDevice;
    use clio_types::Timestamp;

    use super::*;

    #[test]
    fn sequential_appends_seek_once() {
        let clock = Arc::new(CostClock::starting_at(Timestamp::ZERO));
        let model = CostModel::default();
        let dev = TimedDevice::new(Arc::new(MemWormDevice::new(64, 32)), clock.clone(), model);
        let blk = vec![0u8; 64];
        for i in 0..10 {
            dev.append_block(BlockNo(i), &blk).unwrap();
        }
        let elapsed = clock.elapsed_since(Timestamp::ZERO);
        // One initial seek + 10 transfers.
        let want = model.optical_seek_us + 10 * model.optical_transfer_us;
        assert_eq!(elapsed, want, "elapsed {elapsed} µs");
    }

    #[test]
    fn latency_histogram_separates_seeks_from_sequential() {
        let clock = Arc::new(CostClock::starting_at(Timestamp::ZERO));
        let model = CostModel::default();
        let hist = Arc::new(clio_obs::Histogram::new());
        let dev = TimedDevice::new(Arc::new(MemWormDevice::new(64, 32)), clock, model)
            .with_latency_histogram(hist.clone());
        let blk = vec![0u8; 64];
        for i in 0..8 {
            dev.append_block(BlockNo(i), &blk).unwrap();
        }
        let s = hist.snapshot();
        assert_eq!(s.count, 8);
        // 7 sequential transfers plus 1 initial seek+transfer.
        assert_eq!(s.min, model.optical_transfer_us);
        assert_eq!(s.max, model.optical_seek_us + model.optical_transfer_us);
    }

    #[test]
    fn random_reads_seek_every_time() {
        let clock = Arc::new(CostClock::starting_at(Timestamp::ZERO));
        let model = CostModel::default();
        let dev = TimedDevice::new(Arc::new(MemWormDevice::new(64, 64)), clock.clone(), model);
        let blk = vec![0u8; 64];
        for i in 0..32 {
            dev.append_block(BlockNo(i), &blk).unwrap();
        }
        let t0 = Timestamp(clock.elapsed_since(Timestamp::ZERO));
        let mut buf = vec![0u8; 64];
        for b in [28u64, 2, 17, 5] {
            dev.read_block(BlockNo(b), &mut buf).unwrap();
        }
        let elapsed = clock.elapsed_since(Timestamp::ZERO) - t0.0;
        let want = 4 * (model.optical_seek_us + model.optical_transfer_us);
        assert_eq!(elapsed, want);
    }
}
