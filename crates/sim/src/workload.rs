//! Seeded workload generators for the evaluation harness.

use clio_testkit::rng::StdRng;

/// The §3.5 login/logout audit workload: "a file system that we have been
/// using to record user access (i.e. login/logout) to the V-System.
/// Measured values of c and a for this file system are roughly 1/15 and 8"
/// — i.e. the average entry occupies about 1/15 of a block, and an average
/// entrymap entry mentions about 8 log files.
pub struct LoginWorkload {
    rng: StdRng,
    /// Per-user log files to spread entries over.
    pub n_users: usize,
    /// Mean entry payload size in bytes.
    pub mean_entry: usize,
}

impl LoginWorkload {
    /// The paper-calibrated configuration for 1 KiB blocks: entries of
    /// ~64 bytes (c ≈ 1/15 with header) spread over enough concurrently
    /// active users that a ≈ 8 per 16-block window.
    #[must_use]
    pub fn paper_calibrated(seed: u64) -> LoginWorkload {
        LoginWorkload {
            rng: StdRng::seed_from_u64(seed),
            n_users: 10,
            mean_entry: 64,
        }
    }

    /// Generates `count` events of `(user index, payload)`.
    pub fn events(&mut self, count: usize) -> Vec<(usize, Vec<u8>)> {
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            let user = self.rng.gen_range(0..self.n_users);
            // Entry sizes jitter ±25% around the mean.
            let jitter = self.mean_entry / 4;
            let len = self.mean_entry - jitter + self.rng.gen_range(0..=2 * jitter);
            let mut payload = format!("login user{user} session{i} tty{} ", i % 64).into_bytes();
            payload.resize(len, b'.');
            out.push((user, payload));
        }
        out
    }
}

/// A transaction-processing workload: bursts of buffered records followed
/// by a forced commit record (§2.3.1's motivating use).
pub struct TxnWorkload {
    rng: StdRng,
    /// Records per transaction (before the commit record).
    pub records_per_txn: usize,
    /// Mean record payload size.
    pub mean_record: usize,
}

/// One generated transaction: its update records plus a commit marker.
#[derive(Debug, Clone)]
pub struct Txn {
    /// Update record payloads (buffered writes).
    pub updates: Vec<Vec<u8>>,
    /// The commit record payload (forced write).
    pub commit: Vec<u8>,
}

impl TxnWorkload {
    /// A seeded generator.
    #[must_use]
    pub fn new(seed: u64, records_per_txn: usize, mean_record: usize) -> TxnWorkload {
        TxnWorkload {
            rng: StdRng::seed_from_u64(seed),
            records_per_txn,
            mean_record,
        }
    }

    /// Generates `count` transactions.
    pub fn transactions(&mut self, count: usize) -> Vec<Txn> {
        (0..count)
            .map(|t| {
                let updates = (0..self.records_per_txn)
                    .map(|u| {
                        let len = self
                            .rng
                            .gen_range(self.mean_record / 2..=self.mean_record * 2);
                        let mut p = format!("txn{t} update{u} ").into_bytes();
                        p.resize(len.max(12), b'u');
                        p
                    })
                    .collect();
                Txn {
                    updates,
                    commit: format!("txn{t} COMMIT").into_bytes(),
                }
            })
            .collect()
    }
}

/// A mail-delivery workload (§4.2): messages delivered to per-user
/// mailboxes with log-normal-ish sizes.
pub struct MailWorkload {
    rng: StdRng,
    /// Number of mailboxes.
    pub n_boxes: usize,
}

impl MailWorkload {
    /// A seeded generator over `n_boxes` mailboxes.
    #[must_use]
    pub fn new(seed: u64, n_boxes: usize) -> MailWorkload {
        MailWorkload {
            rng: StdRng::seed_from_u64(seed),
            n_boxes,
        }
    }

    /// Generates `count` deliveries of `(mailbox, subject, body)`.
    pub fn deliveries(&mut self, count: usize) -> Vec<(usize, String, Vec<u8>)> {
        (0..count)
            .map(|i| {
                let to = self.rng.gen_range(0..self.n_boxes);
                let subject = format!("message {i}");
                // Sizes cluster small with a heavy tail, like real mail.
                let scale: usize = *[80, 80, 200, 200, 600, 2000, 8000]
                    .get(self.rng.gen_range(0..7usize))
                    .expect("non-empty");
                let len = self.rng.gen_range(scale / 2..=scale);
                let mut body =
                    format!("From: gen\nTo: user{to}\nSubject: {subject}\n\n").into_bytes();
                body.resize(body.len() + len, b'm');
                (to, subject, body)
            })
            .collect()
    }
}

/// One event of an Ousterhout-style file-access trace (§4.1 cites his
/// 4.2 BSD analysis: cache miss ratios under 10% at 16 MB, and "more than
/// 50% of newly-written information is deleted within 5 minutes").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Create a file.
    Create {
        /// Trace-local file id.
        file: u64,
    },
    /// Write `bytes` to the file.
    Write {
        /// Trace-local file id.
        file: u64,
        /// Bytes written.
        bytes: u64,
    },
    /// Read `bytes` from the file.
    Read {
        /// Trace-local file id.
        file: u64,
        /// Bytes read.
        bytes: u64,
    },
    /// Delete the file.
    Delete {
        /// Trace-local file id.
        file: u64,
    },
}

/// Generates file-access traces with short-lived files and skewed reads.
pub struct TraceWorkload {
    rng: StdRng,
    /// Fraction of created files deleted shortly after writing (the paper
    /// quotes >50% within 5 minutes).
    pub short_lived_fraction: f64,
}

impl TraceWorkload {
    /// A seeded generator with the Ousterhout-calibrated deletion mix.
    #[must_use]
    pub fn new(seed: u64) -> TraceWorkload {
        TraceWorkload {
            rng: StdRng::seed_from_u64(seed),
            short_lived_fraction: 0.55,
        }
    }

    /// Generates a trace of roughly `files` file lifetimes. Reads are
    /// skewed towards recently written files (what makes small RAM caches
    /// effective, §4.1).
    pub fn trace(&mut self, files: u64) -> Vec<TraceEvent> {
        let mut out = Vec::new();
        let mut live: Vec<u64> = Vec::new();
        for f in 0..files {
            out.push(TraceEvent::Create { file: f });
            let writes = self.rng.gen_range(1..=4);
            for _ in 0..writes {
                out.push(TraceEvent::Write {
                    file: f,
                    bytes: self.rng.gen_range(256..=8192),
                });
            }
            // Rereads concentrate on the newest files.
            for _ in 0..self.rng.gen_range(0..4) {
                let pick = if live.is_empty() || self.rng.gen_bool(0.7) {
                    f
                } else {
                    live[self.rng.gen_range(0..live.len().min(8))]
                };
                out.push(TraceEvent::Read {
                    file: pick,
                    bytes: self.rng.gen_range(256..=4096),
                });
            }
            if self.rng.gen_bool(self.short_lived_fraction) {
                out.push(TraceEvent::Delete { file: f });
            } else {
                live.insert(0, f);
                live.truncate(64);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn login_workload_hits_calibration() {
        let mut w = LoginWorkload::paper_calibrated(1);
        let events = w.events(2000);
        assert_eq!(events.len(), 2000);
        let avg: f64 =
            events.iter().map(|(_, p)| p.len() as f64).sum::<f64>() / events.len() as f64;
        // c ≈ 1/15 of a 1 KiB block ⇒ entries around 64–72 bytes with
        // headers; the payload mean should sit near 64.
        assert!((56.0..=72.0).contains(&avg), "avg = {avg}");
        // All configured users appear.
        let users: std::collections::BTreeSet<_> = events.iter().map(|(u, _)| *u).collect();
        assert_eq!(users.len(), w.n_users);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a = LoginWorkload::paper_calibrated(7).events(50);
        let b = LoginWorkload::paper_calibrated(7).events(50);
        let c = LoginWorkload::paper_calibrated(8).events(50);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn txn_workload_shapes() {
        let txns = TxnWorkload::new(3, 5, 60).transactions(10);
        assert_eq!(txns.len(), 10);
        assert!(txns.iter().all(|t| t.updates.len() == 5));
        assert!(txns.iter().all(|t| t.commit.ends_with(b"COMMIT")));
    }

    #[test]
    fn trace_deletion_mix() {
        let trace = TraceWorkload::new(5).trace(500);
        let creates = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Create { .. }))
            .count();
        let deletes = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::Delete { .. }))
            .count();
        assert_eq!(creates, 500);
        let frac = deletes as f64 / creates as f64;
        // >50% of files die young (§4.1).
        assert!((0.45..=0.7).contains(&frac), "deleted fraction = {frac}");
    }

    #[test]
    fn mail_sizes_have_a_tail() {
        let mut w = MailWorkload::new(9, 4);
        let d = w.deliveries(300);
        let max = d.iter().map(|(_, _, b)| b.len()).max().unwrap();
        let min = d.iter().map(|(_, _, b)| b.len()).min().unwrap();
        assert!(max > 10 * min, "min={min} max={max}");
        assert!(d.iter().all(|(to, _, _)| *to < 4));
    }
}
