//! The paper's measured per-operation costs (§3.2, §3.3.2, §4).

use std::sync::atomic::{AtomicU64, Ordering};

use clio_types::{Clock, Timestamp};

/// Per-operation latencies in microseconds, defaulted to the paper's
/// measurements on a Sun-3 running the V-System.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Basic synchronous client–server IPC (write) operation on one
    /// workstation: "0.5 ms–1 ms" (§3.2). We use the midpoint.
    pub ipc_local_us: u64,
    /// The same between different workstations: "2.5 ms–3 ms" (§3.2 fn. 9).
    pub ipc_remote_us: u64,
    /// Generating a header timestamp: "roughly 400 µs" (§3.2).
    pub timestamp_gen_us: u64,
    /// Maintaining and periodically logging entrymap information, per
    /// written log entry: "about 70 µs" (§3.2).
    pub entrymap_note_us: u64,
    /// Copying a small entry into the block cache and bookkeeping — the
    /// §3.2 "null write" residue once IPC and timestamping are removed
    /// (2.0 ms − ~0.75 ms IPC − 0.4 ms timestamp ≈ 0.85 ms).
    pub server_append_us: u64,
    /// Per-byte cost of copying client data at the server (fits the
    /// 50-byte entry costing 0.9 ms more than the null entry, §3.2).
    pub copy_per_byte_us: u64,
    /// Accessing and interpreting one cached disk block: "around 0.6 ms"
    /// (§3.3.2).
    pub cached_block_us: u64,
    /// A typical average seek on an optical disk drive: "~150 ms"
    /// (§3.3.2).
    pub optical_seek_us: u64,
    /// Reading one block off the optical medium once positioned.
    pub optical_transfer_us: u64,
    /// §4: retrieving 1 KiB from the log device on a cache miss: 100 ms.
    pub hbfs_log_miss_us: u64,
    /// §4: retrieving 1 KiB from a magnetic-disk cache: 30 ms.
    pub hbfs_disk_cache_us: u64,
    /// §4: retrieving 1 KiB from a RAM cache: 1 ms.
    pub hbfs_ram_cache_us: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            ipc_local_us: 750,
            ipc_remote_us: 2_750,
            timestamp_gen_us: 400,
            entrymap_note_us: 70,
            server_append_us: 850,
            copy_per_byte_us: 18,
            cached_block_us: 600,
            optical_seek_us: 150_000,
            optical_transfer_us: 5_000,
            hbfs_log_miss_us: 100_000,
            hbfs_disk_cache_us: 30_000,
            hbfs_ram_cache_us: 1_000,
        }
    }
}

impl CostModel {
    /// Modelled time of a synchronous log write of `payload` bytes with a
    /// timestamped header, as measured in §3.2 (IPC + timestamp + server
    /// work + copy + entrymap bookkeeping). The paper's numbers: ~2.0 ms
    /// for a null entry, ~2.9 ms for 50 bytes.
    #[must_use]
    pub fn sync_write_us(&self, payload: usize) -> u64 {
        self.ipc_local_us
            + self.timestamp_gen_us
            + self.server_append_us
            + self.entrymap_note_us
            + self.copy_per_byte_us * payload as u64
    }

    /// Modelled time of a log read that touched `cached_blocks` blocks in
    /// the cache and missed `missed_blocks` times to the optical device
    /// (§3.3.2: "the cost of a log read operation … is determined
    /// primarily by the number of cache misses").
    #[must_use]
    pub fn read_us(&self, cached_blocks: u64, missed_blocks: u64) -> u64 {
        self.ipc_local_us
            + cached_blocks * self.cached_block_us
            + missed_blocks * (self.optical_seek_us + self.optical_transfer_us)
    }

    /// §4's history-based read model: expected per-read time (µs/KiB)
    /// given a cache hit ratio, for a RAM cache backed by the log device.
    #[must_use]
    pub fn hbfs_ram_read_us(&self, hit_ratio: f64) -> f64 {
        hit_ratio * self.hbfs_ram_cache_us as f64 + (1.0 - hit_ratio) * self.hbfs_log_miss_us as f64
    }

    /// §4's model for a magnetic-disk cache backed by the log device.
    #[must_use]
    pub fn hbfs_disk_read_us(&self, hit_ratio: f64) -> f64 {
        hit_ratio * self.hbfs_disk_cache_us as f64
            + (1.0 - hit_ratio) * self.hbfs_log_miss_us as f64
    }

    /// §4's crossover: the RAM-cache hit ratio (as a fraction of the disk
    /// cache's hit ratio `h_disk`) above which the RAM cache reads faster.
    /// The paper puts it at 70% for its constants.
    #[must_use]
    pub fn hbfs_crossover_fraction(&self, h_disk: f64) -> f64 {
        // Solve h_ram·ram + (1−h_ram)·miss = h_disk·disk + (1−h_disk)·miss.
        let miss = self.hbfs_log_miss_us as f64;
        let h_ram = h_disk * (miss - self.hbfs_disk_cache_us as f64)
            / (miss - self.hbfs_ram_cache_us as f64);
        h_ram / h_disk
    }
}

/// A virtual clock that advances by *charged* model time: benchmarks charge
/// per-operation costs and read the total as the modelled latency. Also
/// usable as the service's [`Clock`], making entry timestamps advance with
/// modelled time.
#[derive(Debug, Default)]
pub struct CostClock {
    now_us: AtomicU64,
}

impl CostClock {
    /// A clock starting at `start`.
    #[must_use]
    pub fn starting_at(start: Timestamp) -> CostClock {
        CostClock {
            now_us: AtomicU64::new(start.0),
        }
    }

    /// Charges `us` microseconds of modelled time.
    pub fn charge(&self, us: u64) {
        self.now_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Total modelled time elapsed.
    #[must_use]
    pub fn elapsed_since(&self, t0: Timestamp) -> u64 {
        self.now_us.load(Ordering::Relaxed).saturating_sub(t0.0)
    }
}

impl Clock for CostClock {
    fn now(&self) -> Timestamp {
        // Reading the clock costs nothing; ticking by 1 keeps timestamps
        // unique, which the unique-id machinery relies on.
        Timestamp(self.now_us.fetch_add(1, Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_write_matches_paper_envelope() {
        let m = CostModel::default();
        // §3.2: null entry ≈ 2.0 ms; 50-byte entry ≈ 2.9 ms.
        let null = m.sync_write_us(0);
        let fifty = m.sync_write_us(50);
        assert!((1_800..=2_300).contains(&null), "null = {null} µs");
        assert!((2_600..=3_200).contains(&fifty), "50B = {fifty} µs");
        assert!(fifty > null);
    }

    #[test]
    fn read_cost_dominated_by_misses() {
        let m = CostModel::default();
        let warm = m.read_us(11, 0);
        let cold = m.read_us(0, 11);
        // §3.3.2: cached reads are ms-scale, cold reads several hundred ms.
        assert!(warm < 10_000, "warm = {warm}");
        assert!(cold > 1_000_000, "cold = {cold}");
    }

    #[test]
    fn hbfs_crossover_near_seventy_percent() {
        // §4: "as long as the cache hit ratio for the RAM cache is at
        // least 70% of the cache hit ratio of the disk cache, then the RAM
        // cache has the better read access performance."
        let m = CostModel::default();
        let f = m.hbfs_crossover_fraction(0.9);
        assert!((0.65..=0.75).contains(&f), "crossover fraction = {f}");
        // And the read-time model is consistent on both sides of it.
        let h_disk = 0.9;
        let h_ram_hi = h_disk * (f + 0.05);
        let h_ram_lo = h_disk * (f - 0.05);
        assert!(m.hbfs_ram_read_us(h_ram_hi) < m.hbfs_disk_read_us(h_disk));
        assert!(m.hbfs_ram_read_us(h_ram_lo) > m.hbfs_disk_read_us(h_disk));
    }

    #[test]
    fn cost_clock_charges() {
        let c = CostClock::starting_at(Timestamp(100));
        let t0 = Timestamp(100);
        c.charge(500);
        let t = c.now();
        assert!(t >= Timestamp(600));
        assert!(c.elapsed_since(t0) >= 500);
    }
}
