#![warn(missing_docs)]
//! Simulation substrate: the 1987 cost model and workload generators.
//!
//! We measure *operation counts* (block reads, cache hits, IPC round
//! trips…) on the real implementation and convert them to the paper's
//! milliseconds with [`cost::CostModel`], whose constants are the paper's
//! own measurements (Sun-3 + V-System + write-once optical disk). This is
//! the substitution documented in DESIGN.md: latency numbers in the paper
//! are sums of (op count × per-op cost), so reproducing the counts
//! reproduces the shape of every table and figure.
//!
//! [`workload`] provides the seeded generators behind the evaluation:
//! the §3.5 login/logout audit stream, a transaction-commit stream for the
//! forced-write experiments, a mail-delivery stream (§4.2), and an
//! Ousterhout-style file-access trace for the §4.1 feasibility argument.

pub mod cost;
pub mod timed;
pub mod workload;

pub use cost::{CostClock, CostModel};
pub use timed::TimedDevice;
pub use workload::{LoginWorkload, MailWorkload, TraceEvent, TraceWorkload, TxnWorkload};
