//! Catalog and bad-block record payloads.
//!
//! "Any information that is an attribute of a log file as a whole is
//! recorded separately, in a separate log file called the catalog log file.
//! Such 'log file specific' attributes include a log file's name, its access
//! permissions, and its time of creation. Any change to these attributes is
//! also logged (at time of the change) in the catalog log file." (§2.2)
//!
//! The server's in-memory *catalog* — the table indexed by
//! local-logfile-id — is derived by replaying these records. A
//! [`CatalogRecord::Checkpoint`] is written at the start of every successor
//! volume so each volume is self-describing on recovery.
//!
//! Bad-block records (§2.3.2) note corrupted previously-unwritten blocks so
//! the server can skip them after a reboot.

use clio_types::{BlockNo, ClioError, LogFileId, Result, Timestamp};

/// Permission bit: the log file may be read.
pub const PERM_READ: u16 = 1;
/// Permission bit: the log file may be appended to.
pub const PERM_APPEND: u16 = 2;

/// The attributes the catalog tracks per log file (§2.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogFileAttrs {
    /// The log file's id.
    pub id: LogFileId,
    /// The log file this one is a sublog of ([`LogFileId::VOLUME_SEQUENCE`]
    /// for top-level log files).
    pub parent: LogFileId,
    /// Access permissions ([`PERM_READ`] | [`PERM_APPEND`]).
    pub perms: u16,
    /// Creation time.
    pub created: Timestamp,
    /// Whether the log file has been sealed against further appends.
    pub sealed: bool,
    /// The path component naming this log file under its parent.
    pub name: String,
}

/// A record in the catalog log file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogRecord {
    /// A log file was created.
    Create(LogFileAttrs),
    /// A log file's permissions changed.
    SetPerms {
        /// Which log file.
        id: LogFileId,
        /// The new permission bits.
        perms: u16,
    },
    /// A log file was renamed.
    Rename {
        /// Which log file.
        id: LogFileId,
        /// The new name component.
        name: String,
    },
    /// A log file was sealed (no further appends accepted).
    Seal {
        /// Which log file.
        id: LogFileId,
    },
    /// A full snapshot of the live catalog, written at the start of each
    /// successor volume so recovery never needs predecessor volumes.
    Checkpoint {
        /// The id that will be handed to the next created log file.
        next_id: u16,
        /// All log files known at checkpoint time.
        files: Vec<LogFileAttrs>,
    },
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(data: &[u8], off: &mut usize) -> Result<String> {
    if data.len() < *off + 2 {
        return Err(ClioError::BadRecord("truncated string length"));
    }
    let len = usize::from(u16::from_le_bytes([data[*off], data[*off + 1]]));
    *off += 2;
    if data.len() < *off + len {
        return Err(ClioError::BadRecord("truncated string"));
    }
    let s = std::str::from_utf8(&data[*off..*off + len])
        .map_err(|_| ClioError::BadRecord("name is not utf-8"))?
        .to_owned();
    *off += len;
    Ok(s)
}

fn put_attrs(out: &mut Vec<u8>, a: &LogFileAttrs) {
    out.extend_from_slice(&a.id.0.to_le_bytes());
    out.extend_from_slice(&a.parent.0.to_le_bytes());
    out.extend_from_slice(&a.perms.to_le_bytes());
    out.extend_from_slice(&a.created.0.to_le_bytes());
    out.push(u8::from(a.sealed));
    put_str(out, &a.name);
}

fn get_u16(data: &[u8], off: &mut usize) -> Result<u16> {
    if data.len() < *off + 2 {
        return Err(ClioError::BadRecord("truncated u16"));
    }
    let v = u16::from_le_bytes([data[*off], data[*off + 1]]);
    *off += 2;
    Ok(v)
}

fn get_u64(data: &[u8], off: &mut usize) -> Result<u64> {
    if data.len() < *off + 8 {
        return Err(ClioError::BadRecord("truncated u64"));
    }
    let v = u64::from_le_bytes(data[*off..*off + 8].try_into().expect("8 bytes"));
    *off += 8;
    Ok(v)
}

fn get_attrs(data: &[u8], off: &mut usize) -> Result<LogFileAttrs> {
    let id = LogFileId::new(get_u16(data, off)?).ok_or(ClioError::BadRecord("bad id"))?;
    let parent = LogFileId::new(get_u16(data, off)?).ok_or(ClioError::BadRecord("bad parent"))?;
    let perms = get_u16(data, off)?;
    let created = Timestamp(get_u64(data, off)?);
    if data.len() < *off + 1 {
        return Err(ClioError::BadRecord("truncated sealed flag"));
    }
    let sealed = data[*off] != 0;
    *off += 1;
    let name = get_str(data, off)?;
    Ok(LogFileAttrs {
        id,
        parent,
        perms,
        created,
        sealed,
        name,
    })
}

impl CatalogRecord {
    /// Serializes the record payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            CatalogRecord::Create(a) => {
                out.push(1);
                put_attrs(&mut out, a);
            }
            CatalogRecord::SetPerms { id, perms } => {
                out.push(2);
                out.extend_from_slice(&id.0.to_le_bytes());
                out.extend_from_slice(&perms.to_le_bytes());
            }
            CatalogRecord::Rename { id, name } => {
                out.push(3);
                out.extend_from_slice(&id.0.to_le_bytes());
                put_str(&mut out, name);
            }
            CatalogRecord::Seal { id } => {
                out.push(4);
                out.extend_from_slice(&id.0.to_le_bytes());
            }
            CatalogRecord::Checkpoint { next_id, files } => {
                out.push(5);
                out.extend_from_slice(&next_id.to_le_bytes());
                out.extend_from_slice(&(files.len() as u16).to_le_bytes());
                for a in files {
                    put_attrs(&mut out, a);
                }
            }
        }
        out
    }

    /// Parses a record payload.
    pub fn decode(data: &[u8]) -> Result<CatalogRecord> {
        if data.is_empty() {
            return Err(ClioError::BadRecord("empty catalog record"));
        }
        let mut off = 1;
        match data[0] {
            1 => Ok(CatalogRecord::Create(get_attrs(data, &mut off)?)),
            2 => Ok(CatalogRecord::SetPerms {
                id: LogFileId::new(get_u16(data, &mut off)?)
                    .ok_or(ClioError::BadRecord("bad id"))?,
                perms: get_u16(data, &mut off)?,
            }),
            3 => Ok(CatalogRecord::Rename {
                id: LogFileId::new(get_u16(data, &mut off)?)
                    .ok_or(ClioError::BadRecord("bad id"))?,
                name: get_str(data, &mut off)?,
            }),
            4 => Ok(CatalogRecord::Seal {
                id: LogFileId::new(get_u16(data, &mut off)?)
                    .ok_or(ClioError::BadRecord("bad id"))?,
            }),
            5 => {
                let next_id = get_u16(data, &mut off)?;
                let count = usize::from(get_u16(data, &mut off)?);
                let mut files = Vec::with_capacity(count);
                for _ in 0..count {
                    files.push(get_attrs(data, &mut off)?);
                }
                Ok(CatalogRecord::Checkpoint { next_id, files })
            }
            _ => Err(ClioError::BadRecord("unknown catalog record tag")),
        }
    }
}

/// A bad-block record: a corrupted, previously-unwritten block recorded so
/// the server can skip it after a reboot (§2.3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadBlockRecord {
    /// The corrupted block's address.
    pub block: BlockNo,
}

impl BadBlockRecord {
    /// Serializes the record payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        self.block.0.to_le_bytes().to_vec()
    }

    /// Parses a record payload.
    pub fn decode(data: &[u8]) -> Result<BadBlockRecord> {
        if data.len() < 8 {
            return Err(ClioError::BadRecord("truncated bad-block record"));
        }
        Ok(BadBlockRecord {
            block: BlockNo(u64::from_le_bytes(data[..8].try_into().expect("8 bytes"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(id: u16, name: &str) -> LogFileAttrs {
        LogFileAttrs {
            id: LogFileId(id),
            parent: LogFileId::VOLUME_SEQUENCE,
            perms: PERM_READ | PERM_APPEND,
            created: Timestamp(17),
            sealed: false,
            name: name.to_owned(),
        }
    }

    #[test]
    fn create_round_trip() {
        let rec = CatalogRecord::Create(attrs(8, "mail"));
        assert_eq!(CatalogRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn setperms_rename_seal_round_trip() {
        for rec in [
            CatalogRecord::SetPerms {
                id: LogFileId(9),
                perms: PERM_READ,
            },
            CatalogRecord::Rename {
                id: LogFileId(9),
                name: "smith".into(),
            },
            CatalogRecord::Seal { id: LogFileId(9) },
        ] {
            assert_eq!(CatalogRecord::decode(&rec.encode()).unwrap(), rec);
        }
    }

    #[test]
    fn checkpoint_round_trip() {
        let rec = CatalogRecord::Checkpoint {
            next_id: 11,
            files: vec![attrs(8, "mail"), attrs(9, "smith"), attrs(10, "audit")],
        };
        assert_eq!(CatalogRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn unicode_names_survive() {
        let rec = CatalogRecord::Rename {
            id: LogFileId(8),
            name: "журнал-λ".into(),
        };
        assert_eq!(CatalogRecord::decode(&rec.encode()).unwrap(), rec);
    }

    #[test]
    fn decode_rejects_junk() {
        assert!(CatalogRecord::decode(&[]).is_err());
        assert!(CatalogRecord::decode(&[99]).is_err());
        assert!(CatalogRecord::decode(&[1, 0]).is_err());
        // Truncated checkpoint.
        let rec = CatalogRecord::Checkpoint {
            next_id: 9,
            files: vec![attrs(8, "x")],
        };
        let mut bytes = rec.encode();
        bytes.truncate(bytes.len() - 2);
        assert!(CatalogRecord::decode(&bytes).is_err());
    }

    #[test]
    fn bad_block_round_trip() {
        let rec = BadBlockRecord {
            block: BlockNo(123_456_789),
        };
        assert_eq!(BadBlockRecord::decode(&rec.encode()).unwrap(), rec);
        assert!(BadBlockRecord::decode(&[1, 2, 3]).is_err());
    }
}
