//! The log block layout (Figure 1).
//!
//! ```text
//! +----------+----------+-----+------------+---------+----+----+----+---------+
//! | entry 1  | entry 2  | ... |  free (0s) | ... s3    s2   s1 | trailer      |
//! +----------+----------+-----+------------+-------------------+--------------+
//!                                            index (entry sizes,  magic, flags,
//!                                            growing downwards)   count, first
//!                                                                 timestamp, CRC
//! ```
//!
//! Entry records are packed from the front; the *index* of 16-bit entry
//! sizes grows backwards from the trailer, so a block can be scanned either
//! forwards (accumulating sizes) or backwards (walking the index) — "this
//! makes it easy to scan a disk block, either forwards or backwards, to
//! examine the log entries that it contains" (§2.1).
//!
//! The trailer carries the mandatory timestamp of the first entry in the
//! block (§2.1: "a header timestamp is mandatory for the first log entry in
//! each block, so the search succeeds to a resolution of at least a single
//! block") and a CRC32, which is how this implementation detects the
//! garbage blocks §2.3.2 assumes detectable.

use clio_types::crc::crc32;
use clio_types::{ClioError, Result, Timestamp, INVALIDATED_BYTE, MIN_BLOCK_SIZE};

use crate::header::{EntryHeader, FragKind};

/// Bytes of fixed trailer at the end of every block.
pub const TRAILER_SIZE: usize = 18;

/// Magic number identifying a Clio log block.
const MAGIC: u16 = 0xC110;

/// Current block format version.
const VERSION: u8 = 1;

/// Per-block flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockFlags {
    /// The block contains at least one entrymap log entry. A locator hint
    /// only; the source of truth is the entries themselves.
    pub has_entrymap: bool,
    /// The first record continues an entry fragmented from the previous
    /// block.
    pub continues_prev: bool,
    /// The block was sealed before it was full by a forced (synchronous)
    /// write on a pure write-once device (§2.3.1).
    pub sealed_early: bool,
}

impl BlockFlags {
    fn to_byte(self) -> u8 {
        u8::from(self.has_entrymap)
            | u8::from(self.continues_prev) << 1
            | u8::from(self.sealed_early) << 2
    }

    fn from_byte(b: u8) -> BlockFlags {
        BlockFlags {
            has_entrymap: b & 1 != 0,
            continues_prev: b & 2 != 0,
            sealed_early: b & 4 != 0,
        }
    }
}

/// Builds one block in memory.
///
/// The builder is the unit the log writer keeps for the currently open
/// block; [`BlockBuilder::finish`] produces the exact device image.
#[derive(Debug, Clone)]
pub struct BlockBuilder {
    block_size: usize,
    first_ts: Timestamp,
    flags: BlockFlags,
    data: Vec<u8>,
    sizes: Vec<u16>,
}

/// The result of attempting to add a record to a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// The record was written; this is its slot within the block.
    Written(u16),
    /// The block cannot fit the record. The writer uses this to fragment
    /// large entries.
    NoSpace {
        /// Payload bytes that *would* fit alongside this header (0 if not
        /// even the header fits).
        payload_room: usize,
    },
}

impl BlockBuilder {
    /// Starts an empty block.
    ///
    /// `first_ts` is the service time when the block was opened; it becomes
    /// the block's mandatory first-entry timestamp.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is below [`MIN_BLOCK_SIZE`] or above 64 KiB
    /// (the size index stores 16-bit sizes); geometry is fixed at volume
    /// creation, so a bad size is a configuration bug.
    #[must_use]
    pub fn new(block_size: usize, first_ts: Timestamp) -> BlockBuilder {
        assert!(
            (MIN_BLOCK_SIZE..=65536).contains(&block_size),
            "unsupported block size {block_size}"
        );
        BlockBuilder {
            block_size,
            first_ts,
            flags: BlockFlags::default(),
            data: Vec::new(),
            sizes: Vec::new(),
        }
    }

    /// Number of records pushed so far.
    #[must_use]
    pub fn count(&self) -> u16 {
        self.sizes.len() as u16
    }

    /// Whether no records have been pushed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// The block's first-entry timestamp.
    #[must_use]
    pub fn first_ts(&self) -> Timestamp {
        self.first_ts
    }

    /// Bytes of record data (headers + payloads) written so far.
    #[must_use]
    pub fn data_len(&self) -> usize {
        self.data.len()
    }

    /// Mutable access to the block flags.
    pub fn flags_mut(&mut self) -> &mut BlockFlags {
        &mut self.flags
    }

    /// Bytes of payload that would fit for a record whose header encodes to
    /// `header_len` bytes (accounting for the record's index slot).
    #[must_use]
    pub fn payload_room(&self, header_len: usize) -> usize {
        let fixed = self.data.len() + TRAILER_SIZE + 2 * (self.sizes.len() + 1);
        self.block_size
            .saturating_sub(fixed)
            .saturating_sub(header_len)
    }

    /// Appends a record. Fails (without modifying the block) if it does not
    /// fit; see [`PushOutcome::NoSpace`].
    pub fn push(&mut self, header: &EntryHeader, payload: &[u8]) -> PushOutcome {
        let room = self.payload_room(header.encoded_len());
        // `payload_room` saturates at 0 when even the header cannot fit, so
        // check the exact byte budget as well: a header-only record is
        // acceptable only if the header genuinely fits.
        let fixed = self.data.len() + TRAILER_SIZE + 2 * (self.sizes.len() + 1);
        if payload.len() > room || fixed + header.encoded_len() + payload.len() > self.block_size {
            return PushOutcome::NoSpace { payload_room: room };
        }
        let slot = self.sizes.len() as u16;
        let before = self.data.len();
        header.encode(&mut self.data);
        self.data.extend_from_slice(payload);
        let rec_len = self.data.len() - before;
        self.sizes.push(rec_len as u16);
        if matches!(header.frag, FragKind::Continuation { .. }) && slot == 0 {
            self.flags.continues_prev = true;
        }
        PushOutcome::Written(slot)
    }

    /// Serializes the block to its exact device image.
    pub fn finish(&self) -> Vec<u8> {
        let mut out = vec![0u8; self.block_size];
        out[..self.data.len()].copy_from_slice(&self.data);
        // Size index: entry i's size at block_size - TRAILER - 2*(i+1).
        for (i, &s) in self.sizes.iter().enumerate() {
            let off = self.block_size - TRAILER_SIZE - 2 * (i + 1);
            out[off..off + 2].copy_from_slice(&s.to_le_bytes());
        }
        let t = self.block_size - TRAILER_SIZE;
        out[t..t + 2].copy_from_slice(&MAGIC.to_le_bytes());
        out[t + 2] = VERSION;
        out[t + 3] = self.flags.to_byte();
        out[t + 4..t + 6].copy_from_slice(&(self.sizes.len() as u16).to_le_bytes());
        out[t + 6..t + 14].copy_from_slice(&self.first_ts.0.to_le_bytes());
        let crc = crc32(&out[..self.block_size - 4]);
        out[self.block_size - 4..].copy_from_slice(&crc.to_le_bytes());
        out
    }
}

/// A decoded reference to one entry record inside a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryRef<'a> {
    /// The record's slot within the block (0-based).
    pub slot: u16,
    /// The decoded header.
    pub header: EntryHeader,
    /// The record's payload bytes (one fragment's worth if fragmented).
    pub payload: &'a [u8],
}

/// A validated, read-only view of a block image.
#[derive(Debug, Clone, Copy)]
pub struct BlockView<'a> {
    bytes: &'a [u8],
    count: u16,
    flags: BlockFlags,
    first_ts: Timestamp,
}

impl<'a> BlockView<'a> {
    /// Validates and wraps a block image.
    ///
    /// Distinguishes the three §2.3.2 cases: a good block, an *invalidated*
    /// block (burned to all 1s → [`ClioError::InvalidatedBlock`] with block
    /// number 0 as a placeholder the caller rewrites), and a *corrupt*
    /// block (bad magic, version, CRC, or inconsistent geometry).
    pub fn parse(bytes: &'a [u8]) -> Result<BlockView<'a>> {
        use clio_types::BlockNo;
        let n = bytes.len();
        if n < MIN_BLOCK_SIZE {
            return Err(ClioError::BadRecord("block too small"));
        }
        if bytes.iter().all(|&b| b == INVALIDATED_BYTE) {
            return Err(ClioError::InvalidatedBlock(BlockNo(0)));
        }
        let t = n - TRAILER_SIZE;
        let magic = u16::from_le_bytes([bytes[t], bytes[t + 1]]);
        if magic != MAGIC || bytes[t + 2] != VERSION {
            return Err(ClioError::CorruptBlock(BlockNo(0)));
        }
        let crc_stored = u32::from_le_bytes(bytes[n - 4..].try_into().expect("4 bytes"));
        if crc32(&bytes[..n - 4]) != crc_stored {
            return Err(ClioError::CorruptBlock(BlockNo(0)));
        }
        let count = u16::from_le_bytes([bytes[t + 4], bytes[t + 5]]);
        // Geometry sanity: the index must fit.
        if usize::from(count) * 2 + TRAILER_SIZE > n {
            return Err(ClioError::CorruptBlock(BlockNo(0)));
        }
        let first_ts = Timestamp(u64::from_le_bytes(
            bytes[t + 6..t + 14].try_into().expect("8 bytes"),
        ));
        Ok(BlockView {
            bytes,
            count,
            flags: BlockFlags::from_byte(bytes[t + 3]),
            first_ts,
        })
    }

    /// Whether an image is an invalidated (all-1s) block.
    #[must_use]
    pub fn is_invalidated(bytes: &[u8]) -> bool {
        bytes.iter().all(|&b| b == INVALIDATED_BYTE)
    }

    /// Number of entry records in the block.
    #[must_use]
    pub fn count(&self) -> u16 {
        self.count
    }

    /// The block flags.
    #[must_use]
    pub fn flags(&self) -> BlockFlags {
        self.flags
    }

    /// The mandatory first-entry timestamp.
    #[must_use]
    pub fn first_ts(&self) -> Timestamp {
        self.first_ts
    }

    /// The record size (header + payload) of `slot`, from the index.
    pub fn record_size(&self, slot: u16) -> Result<usize> {
        if slot >= self.count {
            return Err(ClioError::BadRecord("slot out of range"));
        }
        let off = self.bytes.len() - TRAILER_SIZE - 2 * (usize::from(slot) + 1);
        Ok(usize::from(u16::from_le_bytes([
            self.bytes[off],
            self.bytes[off + 1],
        ])))
    }

    /// Decodes the record in `slot`.
    ///
    /// Cost is O(slot) within the block: offsets accumulate from the size
    /// index, mirroring the paper's "reads this block and searches it
    /// sequentially for the desired entry" (§2.1).
    pub fn entry(&self, slot: u16) -> Result<EntryRef<'a>> {
        let mut off = 0usize;
        for s in 0..slot {
            off += self.record_size(s)?;
        }
        let size = self.record_size(slot)?;
        if off + size > self.bytes.len() - TRAILER_SIZE - 2 * usize::from(self.count) {
            return Err(ClioError::BadRecord("record overruns data area"));
        }
        let rec = &self.bytes[off..off + size];
        let (header, hlen) = EntryHeader::decode(rec)?;
        Ok(EntryRef {
            slot,
            header,
            payload: &rec[hlen..],
        })
    }

    /// Iterates over all records, front to back.
    pub fn entries(&self) -> impl Iterator<Item = Result<EntryRef<'a>>> + '_ {
        let mut off = 0usize;
        (0..self.count).map(move |slot| {
            let size = self.record_size(slot)?;
            let data_end = self.bytes.len() - TRAILER_SIZE - 2 * usize::from(self.count);
            if off + size > data_end {
                return Err(ClioError::BadRecord("record overruns data area"));
            }
            let rec = &self.bytes[off..off + size];
            off += size;
            let (header, hlen) = EntryHeader::decode(rec)?;
            Ok(EntryRef {
                slot,
                header,
                payload: &rec[hlen..],
            })
        })
    }

    /// Iterates backwards (last record first) using the size index, the
    /// access pattern of backward log scans.
    pub fn entries_rev(&self) -> impl Iterator<Item = Result<EntryRef<'a>>> + '_ {
        // One pass over the index yields every record's offset, so each
        // reverse step decodes in O(1) instead of re-accumulating.
        let mut offsets = Vec::with_capacity(usize::from(self.count));
        let mut off = 0usize;
        let mut ok = true;
        for s in 0..self.count {
            offsets.push(off);
            match self.record_size(s) {
                Ok(sz) => off += sz,
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        let data_end = self.bytes.len() - TRAILER_SIZE - 2 * usize::from(self.count);
        let view = *self;
        (0..self.count).rev().map(move |slot| {
            if !ok {
                return Err(ClioError::BadRecord("bad size index"));
            }
            let start = offsets[usize::from(slot)];
            let size = view.record_size(slot)?;
            if start + size > data_end {
                return Err(ClioError::BadRecord("record overruns data area"));
            }
            let rec = &view.bytes[start..start + size];
            let (header, hlen) = EntryHeader::decode(rec)?;
            Ok(EntryRef {
                slot,
                header,
                payload: &rec[hlen..],
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use clio_types::{LogFileId, SeqNo};

    use super::*;
    use crate::header::EntryForm;

    fn hdr(id: u16) -> EntryHeader {
        EntryHeader::new(LogFileId(id), EntryForm::Minimal, None, None)
    }

    #[test]
    fn build_and_parse_round_trip() {
        let mut b = BlockBuilder::new(256, Timestamp(1000));
        assert_eq!(b.push(&hdr(8), b"alpha"), PushOutcome::Written(0));
        assert_eq!(b.push(&hdr(9), b"beta"), PushOutcome::Written(1));
        let full = EntryHeader::new(
            LogFileId(10),
            EntryForm::Full,
            Some(Timestamp(2000)),
            Some(SeqNo(7)),
        );
        assert_eq!(b.push(&full, b"gamma"), PushOutcome::Written(2));
        let img = b.finish();
        assert_eq!(img.len(), 256);

        let v = BlockView::parse(&img).unwrap();
        assert_eq!(v.count(), 3);
        assert_eq!(v.first_ts(), Timestamp(1000));
        let e0 = v.entry(0).unwrap();
        assert_eq!(e0.header.id, LogFileId(8));
        assert_eq!(e0.payload, b"alpha");
        let e2 = v.entry(2).unwrap();
        assert_eq!(e2.header.timestamp, Some(Timestamp(2000)));
        assert_eq!(e2.header.seqno, Some(SeqNo(7)));
        assert_eq!(e2.payload, b"gamma");
    }

    #[test]
    fn forward_and_backward_scans_agree() {
        let mut b = BlockBuilder::new(512, Timestamp(5));
        for i in 0..10u16 {
            let payload = vec![i as u8; usize::from(i) * 3];
            assert!(matches!(
                b.push(&hdr(8 + i), &payload),
                PushOutcome::Written(_)
            ));
        }
        let img = b.finish();
        let v = BlockView::parse(&img).unwrap();
        let fwd: Vec<_> = v.entries().map(|e| e.unwrap().header.id).collect();
        let mut bwd: Vec<_> = v.entries_rev().map(|e| e.unwrap().header.id).collect();
        bwd.reverse();
        assert_eq!(fwd, bwd);
        assert_eq!(fwd.len(), 10);
    }

    #[test]
    fn no_space_reports_remaining_room() {
        let mut b = BlockBuilder::new(MIN_BLOCK_SIZE, Timestamp(0));
        let room = b.payload_room(2);
        // A payload exactly filling the room fits...
        assert!(matches!(
            b.push(&hdr(8), &vec![0u8; room]),
            PushOutcome::Written(0)
        ));
        // ...and then nothing else does.
        match b.push(&hdr(8), b"x") {
            PushOutcome::NoSpace { payload_room } => assert_eq!(payload_room, 0),
            other => panic!("expected NoSpace, got {other:?}"),
        }
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn crc_detects_corruption() {
        let mut b = BlockBuilder::new(256, Timestamp(0));
        b.push(&hdr(8), b"data");
        let mut img = b.finish();
        assert!(BlockView::parse(&img).is_ok());
        img[10] ^= 0x40;
        assert!(matches!(
            BlockView::parse(&img).unwrap_err(),
            ClioError::CorruptBlock(_)
        ));
    }

    #[test]
    fn invalidated_block_is_distinguished_from_corrupt() {
        let img = vec![INVALIDATED_BYTE; 256];
        assert!(BlockView::is_invalidated(&img));
        assert!(matches!(
            BlockView::parse(&img).unwrap_err(),
            ClioError::InvalidatedBlock(_)
        ));
        let garbage = vec![0x3Cu8; 256];
        assert!(matches!(
            BlockView::parse(&garbage).unwrap_err(),
            ClioError::CorruptBlock(_)
        ));
    }

    #[test]
    fn empty_block_is_valid() {
        let b = BlockBuilder::new(128, Timestamp(42));
        let img = b.finish();
        let v = BlockView::parse(&img).unwrap();
        assert_eq!(v.count(), 0);
        assert_eq!(v.first_ts(), Timestamp(42));
        assert!(v.entries().next().is_none());
    }

    #[test]
    fn continuation_first_sets_flag() {
        let mut b = BlockBuilder::new(256, Timestamp(0));
        let cont = EntryHeader {
            id: LogFileId(8),
            form: EntryForm::Minimal,
            frag: FragKind::Continuation { chain: 5 },
            timestamp: None,
            seqno: None,
        };
        b.push(&cont, b"rest of entry");
        let img = b.finish();
        let v = BlockView::parse(&img).unwrap();
        assert!(v.flags().continues_prev);
        assert_eq!(
            v.entry(0).unwrap().header.frag,
            FragKind::Continuation { chain: 5 }
        );
    }

    #[test]
    fn flags_round_trip() {
        let mut b = BlockBuilder::new(128, Timestamp(0));
        b.flags_mut().has_entrymap = true;
        b.flags_mut().sealed_early = true;
        let v = b.finish();
        let v = BlockView::parse(&v).unwrap();
        assert!(v.flags().has_entrymap);
        assert!(v.flags().sealed_early);
        assert!(!v.flags().continues_prev);
    }

    #[test]
    fn fill_packs_paper_density() {
        // §2.2: with 36 bytes of client data the minimal header costs <10%.
        let mut b = BlockBuilder::new(1024, Timestamp(0));
        let mut n = 0;
        while let PushOutcome::Written(_) = b.push(&hdr(8), &[0u8; 36]) {
            n += 1;
        }
        // 1024 - 18 trailer = 1006; each entry costs 36 + 4 = 40.
        assert_eq!(n, (1024 - TRAILER_SIZE) / 40);
    }
}

#[cfg(test)]
mod properties {
    use clio_testkit::prop::{
        any_u32, any_u64, bytes, check, just, one_of, pair, u16s, u8s, usizes, vec_of, Gen,
    };
    use clio_types::{LogFileId, SeqNo};

    use super::*;
    use crate::header::EntryForm;

    fn arb_header() -> Gen<EntryHeader> {
        let parts = pair(
            &pair(
                &u16s(0..4096),
                &one_of(vec![
                    just(EntryForm::Minimal),
                    just(EntryForm::Timestamped),
                    just(EntryForm::Full),
                ]),
            ),
            &pair(&any_u64(), &any_u32()),
        );
        parts.map(|((id, form), (ts, sq))| {
            EntryHeader::new(
                LogFileId(id),
                form,
                matches!(form, EntryForm::Timestamped | EntryForm::Full).then_some(Timestamp(ts)),
                matches!(form, EntryForm::Full).then_some(SeqNo(sq)),
            )
        })
    }

    #[test]
    fn pack_then_scan_is_identity() {
        let g = pair(
            &vec_of(&pair(&arb_header(), &bytes(0..120)), 0..20),
            &any_u64(),
        );
        check(
            "pack_then_scan_is_identity",
            256,
            &g,
            |(entries, first_ts)| {
                let mut b = BlockBuilder::new(4096, Timestamp(*first_ts));
                let mut written = Vec::new();
                for (h, p) in entries {
                    if let PushOutcome::Written(slot) = b.push(h, p) {
                        written.push((slot, *h, p.clone()));
                    }
                }
                let img = b.finish();
                let v = BlockView::parse(&img).unwrap();
                assert_eq!(usize::from(v.count()), written.len());
                for (slot, h, p) in &written {
                    let e = v.entry(*slot).unwrap();
                    assert_eq!(&e.header, h);
                    assert_eq!(e.payload, &p[..]);
                }
            },
        );
    }

    #[test]
    fn parse_never_panics_on_noise() {
        check(
            "parse_never_panics_on_noise",
            256,
            &bytes(128..512),
            |noise| {
                // Any byte soup either parses or errors; it must not panic.
                let _ = BlockView::parse(noise);
            },
        );
    }

    #[test]
    fn single_bitflip_never_parses_clean() {
        let g = pair(&usizes(0..1024), &u8s(0..8));
        check(
            "single_bitflip_never_parses_clean",
            256,
            &g,
            |(flip_at, bit)| {
                let mut b = BlockBuilder::new(1024, Timestamp(7));
                b.push(
                    &EntryHeader::new(LogFileId(8), EntryForm::Minimal, None, None),
                    b"payload",
                );
                let mut img = b.finish();
                let at = flip_at % img.len();
                img[at] ^= 1 << bit;
                assert!(BlockView::parse(&img).is_err());
            },
        );
    }
}
