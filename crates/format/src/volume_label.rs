//! The volume label — block 0 of every log volume.
//!
//! A log volume is "the removable, physical storage medium, such as an
//! optical disk, on which log data is stored" (§2). The label fixes the
//! volume's identity, its position within its volume sequence (§2.1), and
//! the geometry every other structure depends on (block size and entrymap
//! degree `N`). It is written once, when the volume is initialized, and is
//! the only block that is not part of the volume-sequence log.

use clio_types::crc::crc32;
use clio_types::{
    ClioError, Result, Timestamp, VolumeId, VolumeSeqId, DEFAULT_FANOUT, MIN_BLOCK_SIZE,
};

/// Magic number identifying a Clio volume label.
const MAGIC: u32 = 0xC110_0001;

/// The contents of block 0 of a volume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VolumeLabel {
    /// This volume's identity.
    pub volume: VolumeId,
    /// The volume sequence this volume belongs to.
    pub sequence: VolumeSeqId,
    /// Position of this volume within the sequence (0 = first).
    pub volume_index: u32,
    /// The preceding volume in the sequence, if any.
    pub predecessor: Option<VolumeId>,
    /// Block size in bytes; constant across a volume sequence.
    pub block_size: u32,
    /// Entrymap tree degree `N`; constant across a volume sequence.
    pub fanout: u16,
    /// When the volume was initialized.
    pub created: Timestamp,
}

impl VolumeLabel {
    /// A label for the first volume of a fresh sequence with default
    /// geometry.
    #[must_use]
    pub fn first(
        volume: VolumeId,
        sequence: VolumeSeqId,
        block_size: u32,
        created: Timestamp,
    ) -> VolumeLabel {
        VolumeLabel {
            volume,
            sequence,
            volume_index: 0,
            predecessor: None,
            block_size,
            fanout: DEFAULT_FANOUT as u16,
            created,
        }
    }

    /// The label for the successor of `self` (§2.1: "whenever a volume
    /// fills up, a (previously unused) successor volume is loaded, with
    /// this successor being logically a continuation of its predecessor").
    #[must_use]
    pub fn successor(&self, volume: VolumeId, created: Timestamp) -> VolumeLabel {
        VolumeLabel {
            volume,
            sequence: self.sequence,
            volume_index: self.volume_index + 1,
            predecessor: Some(self.volume),
            block_size: self.block_size,
            fanout: self.fanout,
            created,
        }
    }

    /// Serializes the label to a full block image of `block_size` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `self.block_size` disagrees with `block_size` or is too
    /// small — geometry mismatches are configuration bugs.
    #[must_use]
    pub fn encode(&self, block_size: usize) -> Vec<u8> {
        assert_eq!(self.block_size as usize, block_size, "geometry mismatch");
        assert!(block_size >= MIN_BLOCK_SIZE, "block too small for a label");
        let mut out = vec![0u8; block_size];
        out[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        out[4..12].copy_from_slice(&self.volume.0.to_le_bytes());
        out[12..20].copy_from_slice(&self.sequence.0.to_le_bytes());
        out[20..24].copy_from_slice(&self.volume_index.to_le_bytes());
        out[24] = u8::from(self.predecessor.is_some());
        out[25..33].copy_from_slice(&self.predecessor.unwrap_or(VolumeId(0)).0.to_le_bytes());
        out[33..37].copy_from_slice(&self.block_size.to_le_bytes());
        out[37..39].copy_from_slice(&self.fanout.to_le_bytes());
        out[39..47].copy_from_slice(&self.created.0.to_le_bytes());
        let crc = crc32(&out[..block_size - 4]);
        out[block_size - 4..].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a label block.
    pub fn decode(bytes: &[u8]) -> Result<VolumeLabel> {
        use clio_types::BlockNo;
        if bytes.len() < MIN_BLOCK_SIZE {
            return Err(ClioError::BadRecord("label block too small"));
        }
        let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes"));
        if magic != MAGIC {
            return Err(ClioError::CorruptBlock(BlockNo(0)));
        }
        let crc_stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().expect("4 bytes"));
        if crc32(&bytes[..bytes.len() - 4]) != crc_stored {
            return Err(ClioError::CorruptBlock(BlockNo(0)));
        }
        let volume = VolumeId(u64::from_le_bytes(bytes[4..12].try_into().expect("8")));
        let sequence = VolumeSeqId(u64::from_le_bytes(bytes[12..20].try_into().expect("8")));
        let volume_index = u32::from_le_bytes(bytes[20..24].try_into().expect("4"));
        let predecessor = (bytes[24] != 0)
            .then(|| VolumeId(u64::from_le_bytes(bytes[25..33].try_into().expect("8"))));
        let block_size = u32::from_le_bytes(bytes[33..37].try_into().expect("4"));
        let fanout = u16::from_le_bytes(bytes[37..39].try_into().expect("2"));
        if block_size as usize != bytes.len() {
            return Err(ClioError::BadRecord(
                "label block size disagrees with image",
            ));
        }
        if fanout < 2 {
            return Err(ClioError::BadRecord("fanout below 2"));
        }
        let created = Timestamp(u64::from_le_bytes(bytes[39..47].try_into().expect("8")));
        Ok(VolumeLabel {
            volume,
            sequence,
            volume_index,
            predecessor,
            block_size,
            fanout,
            created,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_first_volume() {
        let label = VolumeLabel::first(VolumeId(7), VolumeSeqId(9), 1024, Timestamp(5));
        let img = label.encode(1024);
        assert_eq!(img.len(), 1024);
        assert_eq!(VolumeLabel::decode(&img).unwrap(), label);
    }

    #[test]
    fn successor_chains() {
        let v0 = VolumeLabel::first(VolumeId(1), VolumeSeqId(9), 512, Timestamp(5));
        let v1 = v0.successor(VolumeId(2), Timestamp(99));
        assert_eq!(v1.volume_index, 1);
        assert_eq!(v1.predecessor, Some(VolumeId(1)));
        assert_eq!(v1.sequence, v0.sequence);
        assert_eq!(v1.block_size, v0.block_size);
        let img = v1.encode(512);
        assert_eq!(VolumeLabel::decode(&img).unwrap(), v1);
    }

    #[test]
    fn corruption_is_detected() {
        let label = VolumeLabel::first(VolumeId(7), VolumeSeqId(9), 256, Timestamp(5));
        let mut img = label.encode(256);
        img[8] ^= 1;
        assert!(VolumeLabel::decode(&img).is_err());
        // Not a label at all.
        assert!(VolumeLabel::decode(&vec![0u8; 256]).is_err());
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn encode_checks_geometry() {
        let label = VolumeLabel::first(VolumeId(7), VolumeSeqId(9), 1024, Timestamp(5));
        let _ = label.encode(512);
    }

    #[test]
    fn decode_rejects_wrong_image_size() {
        let label = VolumeLabel::first(VolumeId(7), VolumeSeqId(9), 1024, Timestamp(5));
        let img = label.encode(1024);
        // Truncated to half: CRC is elsewhere, magic still present.
        assert!(VolumeLabel::decode(&img[..512]).is_err());
    }
}
