//! The payload of an entrymap log entry.
//!
//! A level-`i` entrymap log entry appears every `N^i` blocks and contains,
//! for each active log file with entries in the previous `N^i` blocks, a
//! bitmap of size `N` indicating which sub-groups (blocks for level 1,
//! groups of `N^(i-1)` blocks for higher levels) contain such entries
//! (§2.1). From §3.5, an entrymap entry's size is `h + a(N/8 + c)` bytes:
//! `a` bitmaps of `N/8` bytes each plus a small per-file constant `c` (the
//! 2-byte file id here) and the entry header `h`.

use clio_types::{ClioError, LogFileId, Result, SmallBitmap};

/// A decoded entrymap log entry payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntrymapRecord {
    /// Tree level: 1 covers blocks, 2 covers groups of `N`, and so on.
    pub level: u8,
    /// Which level-`level` group the record covers: the blocks
    /// `[group * N^level, (group + 1) * N^level)`. Normally implied by the
    /// record's location, but stored explicitly so a map displaced from an
    /// invalidated block (§2.3.2) remains self-identifying.
    pub group: u64,
    /// Bitmap width `N` (the tree degree).
    pub bits: u16,
    /// Whether further records for the same (`level`, `group`) follow in a
    /// *subsequent* block — set when a record's per-file maps are too
    /// numerous to fit the block that should carry them and the remainder
    /// is displaced forward (§2.3.2 spirit). Readers merge until they see a
    /// record with this flag clear.
    pub continued: bool,
    /// One bitmap per log file that has entries in the covered range,
    /// sorted by id.
    pub maps: Vec<(LogFileId, SmallBitmap)>,
}

impl EntrymapRecord {
    /// Creates a record; the map list is sorted by id for determinism.
    #[must_use]
    pub fn new(
        level: u8,
        group: u64,
        bits: u16,
        mut maps: Vec<(LogFileId, SmallBitmap)>,
    ) -> EntrymapRecord {
        maps.sort_by_key(|(id, _)| *id);
        EntrymapRecord {
            level,
            group,
            bits,
            continued: false,
            maps,
        }
    }

    /// Fixed bytes before the per-file maps.
    pub const HEADER_LEN: usize = 14;

    /// Bytes per per-file map entry for a given bitmap width.
    #[must_use]
    pub fn per_map_len(bits: u16) -> usize {
        2 + usize::from(bits).div_ceil(8)
    }

    /// Encoded payload length in bytes.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        Self::HEADER_LEN + self.maps.len() * Self::per_map_len(self.bits)
    }

    /// Serializes the payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        out.push(self.level);
        out.extend_from_slice(&self.group.to_le_bytes());
        out.extend_from_slice(&self.bits.to_le_bytes());
        out.push(u8::from(self.continued));
        out.extend_from_slice(&(self.maps.len() as u16).to_le_bytes());
        for (id, bm) in &self.maps {
            out.extend_from_slice(&id.0.to_le_bytes());
            debug_assert_eq!(bm.len(), usize::from(self.bits));
            out.extend_from_slice(bm.as_bytes());
        }
        out
    }

    /// Parses a payload.
    pub fn decode(data: &[u8]) -> Result<EntrymapRecord> {
        if data.len() < Self::HEADER_LEN {
            return Err(ClioError::BadRecord("truncated entrymap record"));
        }
        let level = data[0];
        let group = u64::from_le_bytes(data[1..9].try_into().expect("8 bytes"));
        let bits = u16::from_le_bytes([data[9], data[10]]);
        if bits == 0 || bits > 1024 {
            return Err(ClioError::BadRecord("implausible entrymap width"));
        }
        let continued = data[11] != 0;
        let count = usize::from(u16::from_le_bytes([data[12], data[13]]));
        let per = Self::per_map_len(bits);
        if data.len() < Self::HEADER_LEN + count * per {
            return Err(ClioError::BadRecord("truncated entrymap bitmaps"));
        }
        let mut maps = Vec::with_capacity(count);
        let mut off = Self::HEADER_LEN;
        for _ in 0..count {
            let id = u16::from_le_bytes([data[off], data[off + 1]]);
            let id = LogFileId::new(id).ok_or(ClioError::BadRecord("entrymap id out of range"))?;
            let bm = SmallBitmap::from_bytes(usize::from(bits), &data[off + 2..off + per])
                .ok_or(ClioError::BadRecord("short bitmap"))?;
            maps.push((id, bm));
            off += per;
        }
        Ok(EntrymapRecord {
            level,
            group,
            bits,
            continued,
            maps,
        })
    }

    /// The bitmap for `id`, if the covered range contains its entries.
    #[must_use]
    pub fn map_for(&self, id: LogFileId) -> Option<&SmallBitmap> {
        self.maps
            .binary_search_by_key(&id, |(i, _)| *i)
            .ok()
            .map(|at| &self.maps[at].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bm(bits: u16, ones: &[usize]) -> SmallBitmap {
        let mut b = SmallBitmap::new(usize::from(bits));
        for &i in ones {
            b.set(i);
        }
        b
    }

    #[test]
    fn round_trip() {
        let rec = EntrymapRecord::new(
            2,
            31,
            16,
            vec![
                (LogFileId(9), bm(16, &[0, 15])),
                (LogFileId(2), bm(16, &[3])),
            ],
        );
        let bytes = rec.encode();
        assert_eq!(bytes.len(), rec.encoded_len());
        let back = EntrymapRecord::decode(&bytes).unwrap();
        assert_eq!(back, rec);
        // Sorted by id.
        assert_eq!(back.maps[0].0, LogFileId(2));
    }

    #[test]
    fn map_lookup() {
        let rec = EntrymapRecord::new(1, 0, 8, vec![(LogFileId(8), bm(8, &[1]))]);
        assert!(rec.map_for(LogFileId(8)).unwrap().get(1));
        assert!(rec.map_for(LogFileId(9)).is_none());
    }

    #[test]
    fn empty_record_is_legal() {
        // A quiet period can still force an (empty) entrymap entry.
        let rec = EntrymapRecord::new(1, 5, 16, vec![]);
        let back = EntrymapRecord::decode(&rec.encode()).unwrap();
        assert!(back.maps.is_empty());
        assert_eq!(back.encoded_len(), EntrymapRecord::HEADER_LEN);
    }

    #[test]
    fn decode_rejects_truncation_and_junk() {
        assert!(EntrymapRecord::decode(&[]).is_err());
        assert!(EntrymapRecord::decode(&[1, 16, 0]).is_err());
        let rec = EntrymapRecord::new(1, 0, 16, vec![(LogFileId(8), bm(16, &[0]))]);
        let mut bytes = rec.encode();
        bytes.truncate(bytes.len() - 1);
        assert!(EntrymapRecord::decode(&bytes).is_err());
        // Zero-width bitmaps are implausible.
        assert!(EntrymapRecord::decode(&[1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn continued_flag_round_trips() {
        let mut rec = EntrymapRecord::new(1, 3, 16, vec![(LogFileId(8), bm(16, &[2]))]);
        rec.continued = true;
        let back = EntrymapRecord::decode(&rec.encode()).unwrap();
        assert!(back.continued);
        assert_eq!(back, rec);
    }

    #[test]
    fn size_matches_paper_formula() {
        // §3.5: an entrymap entry's size is h + a(N/8 + c); our payload part
        // is a(N/8 + 2) + 5 fixed bytes.
        let n = 16u16;
        for a in [0usize, 1, 5, 40] {
            let maps: Vec<_> = (0..a)
                .map(|i| (LogFileId(8 + i as u16), bm(n, &[i % 16])))
                .collect();
            let rec = EntrymapRecord::new(1, 0, n, maps);
            assert_eq!(
                rec.encoded_len(),
                EntrymapRecord::HEADER_LEN + a * (usize::from(n) / 8 + 2)
            );
        }
    }
}
