#![warn(missing_docs)]
//! On-disk formats for the Clio log service.
//!
//! This crate defines every byte that reaches a log device:
//!
//! - [`header`]: log entry headers. The minimal header costs 4 bytes per
//!   entry — 2 bytes of in-data header (4-bit form + 12-bit
//!   local-logfile-id) plus a 2-byte size slot in the end-of-block index —
//!   exactly the paper's §2.2 layout. Timestamped and "full" (client
//!   sequence number) forms extend it.
//! - [`block`]: the block layout of Figure 1 — entry records packed
//!   forwards, an index of entry sizes at the end of the block so a block
//!   can be scanned forwards *or* backwards, and a trailer carrying the
//!   mandatory first-entry timestamp (§2.1) and a CRC for corruption
//!   detection (§2.3.2). Entries larger than the free space are fragmented
//!   over multiple blocks (§2.1 footnote 7).
//! - [`entrymap_rec`]: the payload of entrymap log entries — one `N`-bit
//!   bitmap per active log file (§2.1).
//! - [`records`]: catalog log records (log-file attributes, §2.2), catalog
//!   checkpoints, and bad-block records (§2.3.2).
//! - [`volume_label`]: block 0 of every volume — volume identity, position
//!   in its volume sequence, geometry.

pub mod block;
pub mod entrymap_rec;
pub mod header;
pub mod records;
pub mod volume_label;

pub use block::{BlockBuilder, BlockFlags, BlockView, EntryRef, PushOutcome, TRAILER_SIZE};
pub use entrymap_rec::EntrymapRecord;
pub use header::{EntryForm, EntryHeader, FragKind};
pub use records::{BadBlockRecord, CatalogRecord, LogFileAttrs};
pub use volume_label::VolumeLabel;
