//! Log entry headers.
//!
//! Every log entry record starts with a 16-bit word packing a 4-bit *form*
//! and the 12-bit local-logfile-id (§2.2). The form selects how much more
//! header follows:
//!
//! | form | name | extra header | total in-data header |
//! |------|------|--------------|----------------------|
//! | 0x1 | minimal | — | 2 bytes |
//! | 0x2 | timestamped | 8-byte timestamp | 10 bytes |
//! | 0x3 | full | 8-byte timestamp + 4-byte client seq-no | 14 bytes |
//! | 0x5/0x6/0x7 | fragmented first piece of the above | + 4-byte total payload length | +4 bytes |
//! | 0x8 | continuation fragment | — | 2 bytes |
//!
//! The entry *size* is not stored in the header; it lives in the
//! end-of-block index (§2.2, Figure 1), so the minimal per-entry overhead is
//! 2 (header) + 2 (index) = 4 bytes — the paper's figure. The paper's
//! "complete, 14-byte log entry header" (§3.2) corresponds to our `full`
//! form: 2 + 8 + 4 = 14 bytes.

use clio_types::{ClioError, LogFileId, Result, SeqNo, Timestamp};

/// Mask extracting the 12-bit local-logfile-id from the leading word.
const ID_MASK: u16 = 0x0FFF;
/// Bit set on first-fragment forms.
const FRAG_FIRST_BIT: u16 = 0x4;

/// The header form of an entry record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryForm {
    /// 2-byte header: form + id only.
    Minimal,
    /// Adds a 64-bit service timestamp (§2.1).
    Timestamped,
    /// Adds a timestamp and a client-chosen sequence number, for unique
    /// identification of asynchronously written entries (§2.1).
    Full,
}

impl EntryForm {
    fn code(self) -> u16 {
        match self {
            EntryForm::Minimal => 0x1,
            EntryForm::Timestamped => 0x2,
            EntryForm::Full => 0x3,
        }
    }

    /// In-data header bytes for an unfragmented record of this form.
    #[must_use]
    pub fn header_len(self) -> usize {
        match self {
            EntryForm::Minimal => 2,
            EntryForm::Timestamped => 10,
            EntryForm::Full => 14,
        }
    }

    /// Accounting overhead per entry, including the 2-byte size-index slot.
    ///
    /// `Minimal` gives the paper's 4-byte minimum (§2.2).
    #[must_use]
    pub fn overhead(self) -> usize {
        self.header_len() + 2
    }
}

/// How a record participates in fragmentation (§2.1 footnote 7: "a log entry
/// may also be fragmented over more than one block").
///
/// Fragments carry a `chain` tag — a per-entry nonce derived from the
/// entry's service timestamp — so that a continuation can never be stitched
/// to the wrong first fragment (e.g. across a crash that tore one entry and
/// then wrote another of the same log file).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FragKind {
    /// A whole entry in one record.
    Whole,
    /// The first fragment; carries the total payload length and the chain
    /// tag its continuations must match.
    First {
        /// Total payload bytes across all fragments.
        total_len: u32,
        /// The chain nonce.
        chain: u32,
    },
    /// A continuation fragment of the chain with this nonce.
    Continuation {
        /// The chain nonce.
        chain: u32,
    },
}

/// A decoded entry header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryHeader {
    /// The log file the entry belongs to (its most specific sublog).
    pub id: LogFileId,
    /// Which header form was used.
    pub form: EntryForm,
    /// Fragmentation role.
    pub frag: FragKind,
    /// Service timestamp, if the form carries one.
    pub timestamp: Option<Timestamp>,
    /// Client sequence number, if the form carries one.
    pub seqno: Option<SeqNo>,
}

impl EntryHeader {
    /// A whole (unfragmented) header of the given form.
    #[must_use]
    pub fn new(
        id: LogFileId,
        form: EntryForm,
        timestamp: Option<Timestamp>,
        seqno: Option<SeqNo>,
    ) -> EntryHeader {
        EntryHeader {
            id,
            form,
            frag: FragKind::Whole,
            timestamp,
            seqno,
        }
    }

    /// The encoded length of this header in the data area.
    #[must_use]
    pub fn encoded_len(&self) -> usize {
        match self.frag {
            FragKind::Whole => self.form.header_len(),
            FragKind::First { .. } => self.form.header_len() + 8,
            FragKind::Continuation { .. } => 6,
        }
    }

    /// Encodes the header into `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self.frag {
            FragKind::Continuation { chain } => {
                out.extend_from_slice(&((0x8 << 12) | (self.id.0 & ID_MASK)).to_le_bytes());
                out.extend_from_slice(&chain.to_le_bytes());
            }
            FragKind::Whole | FragKind::First { .. } => {
                let mut code = self.form.code();
                if matches!(self.frag, FragKind::First { .. }) {
                    code |= FRAG_FIRST_BIT;
                }
                out.extend_from_slice(&((code << 12) | (self.id.0 & ID_MASK)).to_le_bytes());
                if matches!(self.form, EntryForm::Timestamped | EntryForm::Full) {
                    out.extend_from_slice(
                        &self.timestamp.unwrap_or(Timestamp::ZERO).0.to_le_bytes(),
                    );
                }
                if matches!(self.form, EntryForm::Full) {
                    out.extend_from_slice(&self.seqno.unwrap_or_default().0.to_le_bytes());
                }
                if let FragKind::First { total_len, chain } = self.frag {
                    out.extend_from_slice(&total_len.to_le_bytes());
                    out.extend_from_slice(&chain.to_le_bytes());
                }
            }
        }
    }

    /// Decodes a header from the start of `data`, returning it and the
    /// number of bytes consumed.
    pub fn decode(data: &[u8]) -> Result<(EntryHeader, usize)> {
        if data.len() < 2 {
            return Err(ClioError::BadRecord("truncated entry header"));
        }
        let word = u16::from_le_bytes([data[0], data[1]]);
        let code = word >> 12;
        let id = LogFileId(word & ID_MASK);
        if code == 0x8 {
            if data.len() < 6 {
                return Err(ClioError::BadRecord("truncated continuation chain"));
            }
            let chain = u32::from_le_bytes(data[2..6].try_into().expect("4 bytes"));
            return Ok((
                EntryHeader {
                    id,
                    form: EntryForm::Minimal,
                    frag: FragKind::Continuation { chain },
                    timestamp: None,
                    seqno: None,
                },
                6,
            ));
        }
        let frag_first = code & FRAG_FIRST_BIT != 0;
        let form = match code & 0x3 {
            0x1 => EntryForm::Minimal,
            0x2 => EntryForm::Timestamped,
            0x3 => EntryForm::Full,
            _ => return Err(ClioError::BadRecord("unknown entry form")),
        };
        let mut off = 2;
        let mut timestamp = None;
        let mut seqno = None;
        if matches!(form, EntryForm::Timestamped | EntryForm::Full) {
            if data.len() < off + 8 {
                return Err(ClioError::BadRecord("truncated timestamp"));
            }
            timestamp = Some(Timestamp(u64::from_le_bytes(
                data[off..off + 8].try_into().expect("slice is 8 bytes"),
            )));
            off += 8;
        }
        if matches!(form, EntryForm::Full) {
            if data.len() < off + 4 {
                return Err(ClioError::BadRecord("truncated seqno"));
            }
            seqno = Some(SeqNo(u32::from_le_bytes(
                data[off..off + 4].try_into().expect("slice is 4 bytes"),
            )));
            off += 4;
        }
        let frag = if frag_first {
            if data.len() < off + 8 {
                return Err(ClioError::BadRecord("truncated fragment length"));
            }
            let total_len =
                u32::from_le_bytes(data[off..off + 4].try_into().expect("slice is 4 bytes"));
            let chain =
                u32::from_le_bytes(data[off + 4..off + 8].try_into().expect("slice is 4 bytes"));
            off += 8;
            FragKind::First { total_len, chain }
        } else {
            FragKind::Whole
        };
        Ok((
            EntryHeader {
                id,
                form,
                frag,
                timestamp,
                seqno,
            },
            off,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(h: EntryHeader) {
        let mut buf = Vec::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), h.encoded_len());
        let (back, used) = EntryHeader::decode(&buf).unwrap();
        assert_eq!(used, buf.len());
        assert_eq!(back, h);
    }

    #[test]
    fn minimal_round_trip() {
        round_trip(EntryHeader::new(
            LogFileId(42),
            EntryForm::Minimal,
            None,
            None,
        ));
    }

    #[test]
    fn timestamped_round_trip() {
        round_trip(EntryHeader::new(
            LogFileId(4095),
            EntryForm::Timestamped,
            Some(Timestamp(123_456_789)),
            None,
        ));
    }

    #[test]
    fn full_round_trip() {
        round_trip(EntryHeader::new(
            LogFileId(8),
            EntryForm::Full,
            Some(Timestamp(u64::MAX - 1)),
            Some(SeqNo(0xDEAD_BEEF)),
        ));
    }

    #[test]
    fn fragment_first_round_trip() {
        let mut h = EntryHeader::new(
            LogFileId(9),
            EntryForm::Timestamped,
            Some(Timestamp(77)),
            None,
        );
        h.frag = FragKind::First {
            total_len: 5000,
            chain: 0xABCD,
        };
        round_trip(h);
    }

    #[test]
    fn continuation_round_trip() {
        let h = EntryHeader {
            id: LogFileId(9),
            form: EntryForm::Minimal,
            frag: FragKind::Continuation { chain: 77 },
            timestamp: None,
            seqno: None,
        };
        round_trip(h);
    }

    #[test]
    fn header_lengths_match_the_paper() {
        // §2.2: minimal header 2 bytes in-data + 2 bytes of index = 4 total.
        assert_eq!(EntryForm::Minimal.header_len(), 2);
        assert_eq!(EntryForm::Minimal.overhead(), 4);
        // §3.2: "complete, 14-byte log entry header that included a (64-bit)
        // timestamp".
        assert_eq!(EntryForm::Full.header_len(), 14);
    }

    #[test]
    fn decode_rejects_junk() {
        assert!(EntryHeader::decode(&[]).is_err());
        assert!(EntryHeader::decode(&[0x01]).is_err());
        // Form 0 is invalid.
        assert!(EntryHeader::decode(&[0x05, 0x00]).is_err());
        // Timestamped form with missing timestamp bytes.
        assert!(EntryHeader::decode(&[0x05, 0x20, 1, 2]).is_err());
        // All-ones (invalidated block content) is rejected: code 0xF has
        // low bits 0x3 (Full) but fragment length/seqno run past the data.
        assert!(EntryHeader::decode(&[0xFF, 0xFF]).is_err());
    }

    #[test]
    fn id_is_preserved_across_all_forms() {
        for raw in [0u16, 1, 7, 8, 100, 4095] {
            let h = EntryHeader::new(LogFileId(raw), EntryForm::Minimal, None, None);
            let mut buf = Vec::new();
            h.encode(&mut buf);
            let (back, _) = EntryHeader::decode(&buf).unwrap();
            assert_eq!(back.id, LogFileId(raw));
        }
    }
}
