//! Fuzz-style robustness: every decoder must reject arbitrary bytes with
//! an error, never panic, and round-trip what it encodes even when the
//! image is then perturbed. Runs on `clio_testkit::prop`.

use clio_format::records::{BadBlockRecord, CatalogRecord};
use clio_format::{BlockView, EntryHeader, EntrymapRecord, VolumeLabel};
use clio_testkit::prop::{any_u8, bytes, check, pair, usizes};

const CASES: u32 = 256;

#[test]
fn entry_header_decode_never_panics() {
    check(
        "entry_header_decode_never_panics",
        CASES,
        &bytes(0..40),
        |noise| {
            let _ = EntryHeader::decode(noise);
        },
    );
}

#[test]
fn entrymap_record_decode_never_panics() {
    check(
        "entrymap_record_decode_never_panics",
        CASES,
        &bytes(0..300),
        |noise| {
            let _ = EntrymapRecord::decode(noise);
        },
    );
}

#[test]
fn catalog_record_decode_never_panics() {
    check(
        "catalog_record_decode_never_panics",
        CASES,
        &bytes(0..300),
        |noise| {
            let _ = CatalogRecord::decode(noise);
        },
    );
}

#[test]
fn bad_block_record_decode_never_panics() {
    check(
        "bad_block_record_decode_never_panics",
        CASES,
        &bytes(0..20),
        |noise| {
            let _ = BadBlockRecord::decode(noise);
        },
    );
}

#[test]
fn volume_label_decode_never_panics() {
    check(
        "volume_label_decode_never_panics",
        CASES,
        &bytes(0..2048),
        |noise| {
            let _ = VolumeLabel::decode(noise);
        },
    );
}

#[test]
fn block_view_never_panics_on_truncated_or_extended_images() {
    let g = pair(&usizes(0..1024), &usizes(0..64));
    check(
        "block_view_never_panics_on_truncated_or_extended_images",
        CASES,
        &g,
        |(cut, pad)| {
            // Build a real block, then hand the parser a wrong-length slice.
            use clio_format::{BlockBuilder, EntryForm};
            use clio_types::{LogFileId, Timestamp};
            let mut b = BlockBuilder::new(1024, Timestamp(5));
            let h = EntryHeader::new(
                LogFileId(8),
                EntryForm::Timestamped,
                Some(Timestamp(6)),
                None,
            );
            let _ = b.push(&h, b"payload bytes");
            let mut img = b.finish();
            let cut = (*cut).min(img.len());
            let _ = BlockView::parse(&img[..cut]);
            img.extend(std::iter::repeat_n(0xA5u8, *pad));
            let _ = BlockView::parse(&img);
        },
    );
}

#[test]
fn catalog_record_survives_arbitrary_mutation_without_panic() {
    let g = pair(&usizes(0..200), &any_u8());
    check(
        "catalog_record_survives_arbitrary_mutation_without_panic",
        CASES,
        &g,
        |(at, val)| {
            use clio_format::records::LogFileAttrs;
            use clio_types::{LogFileId, Timestamp};
            let rec = CatalogRecord::Checkpoint {
                next_id: 42,
                files: vec![LogFileAttrs {
                    id: LogFileId(8),
                    parent: LogFileId(0),
                    perms: 3,
                    created: Timestamp(9),
                    sealed: false,
                    name: "mutated".into(),
                }],
            };
            let mut bytes = rec.encode();
            let i = at % bytes.len();
            bytes[i] = *val;
            // Must decode to something or error — never panic, never hang.
            let _ = CatalogRecord::decode(&bytes);
        },
    );
}
