//! Fuzz-style robustness: every decoder must reject arbitrary bytes with
//! an error, never panic, and round-trip what it encodes even when the
//! image is then perturbed.

use proptest::prelude::*;

use clio_format::records::{BadBlockRecord, CatalogRecord};
use clio_format::{BlockView, EntrymapRecord, EntryHeader, VolumeLabel};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn entry_header_decode_never_panics(noise in proptest::collection::vec(any::<u8>(), 0..40)) {
        let _ = EntryHeader::decode(&noise);
    }

    #[test]
    fn entrymap_record_decode_never_panics(noise in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = EntrymapRecord::decode(&noise);
    }

    #[test]
    fn catalog_record_decode_never_panics(noise in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = CatalogRecord::decode(&noise);
    }

    #[test]
    fn bad_block_record_decode_never_panics(noise in proptest::collection::vec(any::<u8>(), 0..20)) {
        let _ = BadBlockRecord::decode(&noise);
    }

    #[test]
    fn volume_label_decode_never_panics(noise in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = VolumeLabel::decode(&noise);
    }

    #[test]
    fn block_view_never_panics_on_truncated_or_extended_images(
        cut in 0usize..1024,
        pad in 0usize..64,
    ) {
        // Build a real block, then hand the parser a wrong-length slice.
        use clio_format::{BlockBuilder, EntryForm};
        use clio_types::{LogFileId, Timestamp};
        let mut b = BlockBuilder::new(1024, Timestamp(5));
        let h = EntryHeader::new(LogFileId(8), EntryForm::Timestamped, Some(Timestamp(6)), None);
        let _ = b.push(&h, b"payload bytes");
        let mut img = b.finish();
        let cut = cut.min(img.len());
        let _ = BlockView::parse(&img[..cut]);
        img.extend(std::iter::repeat_n(0xA5u8, pad));
        let _ = BlockView::parse(&img);
    }

    #[test]
    fn catalog_record_survives_arbitrary_mutation_without_panic(
        at in 0usize..200,
        val in any::<u8>(),
    ) {
        use clio_format::records::LogFileAttrs;
        use clio_types::{LogFileId, Timestamp};
        let rec = CatalogRecord::Checkpoint {
            next_id: 42,
            files: vec![LogFileAttrs {
                id: LogFileId(8),
                parent: LogFileId(0),
                perms: 3,
                created: Timestamp(9),
                sealed: false,
                name: "mutated".into(),
            }],
        };
        let mut bytes = rec.encode();
        let i = at % bytes.len();
        bytes[i] = val;
        // Must decode to something or error — never panic, never hang.
        let _ = CatalogRecord::decode(&bytes);
    }
}
