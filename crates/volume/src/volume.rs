//! A single log volume: one write-once device plus its label.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use clio_types::{BlockNo, ClioError, Result, Timestamp, VolumeId, VolumeSeqId};

use clio_cache::{BlockCache, CacheKey, DeviceId};
use clio_device::traits::locate_end;
use clio_device::SharedDevice;
use clio_format::VolumeLabel;

/// A mounted log volume.
///
/// Device block 0 holds the [`VolumeLabel`]; *data blocks* are numbered
/// from 0 and live at device block `db + 1`. All reads go through the
/// shared [`BlockCache`]; appends write through the cache so recently
/// written data is hot (§3.3: reads of recent data "are likely to be
/// satisfied from the file server's in-memory cache").
pub struct Volume {
    device: SharedDevice,
    device_id: DeviceId,
    cache: Arc<BlockCache>,
    label: VolumeLabel,
    /// Number of *data* blocks written (device end minus the label block).
    data_end: AtomicU64,
    /// Probes spent locating the end at open time (0 if queried directly).
    end_probes: u64,
    /// Whether the medium is mounted. Older volumes of a sequence may be
    /// dismounted and "made available on demand" (§2.1); reads of an
    /// offline volume fail with [`ClioError::VolumeOffline`].
    online: std::sync::atomic::AtomicBool,
}

impl Volume {
    /// Formats a fresh device with `label` (writes device block 0).
    pub fn format(
        device: SharedDevice,
        device_id: DeviceId,
        cache: Arc<BlockCache>,
        label: VolumeLabel,
    ) -> Result<Volume> {
        if device.block_size() != label.block_size as usize {
            return Err(ClioError::Internal(format!(
                "device block size {} disagrees with label {}",
                device.block_size(),
                label.block_size
            )));
        }
        let image = label.encode(device.block_size());
        device.append_block(BlockNo(0), &image)?;
        cache.put(CacheKey::new(device_id, BlockNo(0)), Arc::new(image));
        Ok(Volume {
            device,
            device_id,
            cache,
            label,
            data_end: AtomicU64::new(0),
            end_probes: 0,
            online: std::sync::atomic::AtomicBool::new(true),
        })
    }

    /// Mounts an already-formatted device, reading its label and locating
    /// the end of the written portion (§2.3.1 initialization step 1 — by
    /// query or binary search).
    pub fn open(
        device: SharedDevice,
        device_id: DeviceId,
        cache: Arc<BlockCache>,
    ) -> Result<Volume> {
        let mut label_img = vec![0u8; device.block_size()];
        device.read_block(BlockNo(0), &mut label_img)?;
        let label = VolumeLabel::decode(&label_img)?;
        let (end, probes) = locate_end(&*device)?;
        if end.0 == 0 {
            return Err(ClioError::Internal(
                "formatted volume lost its label".into(),
            ));
        }
        cache.put(CacheKey::new(device_id, BlockNo(0)), Arc::new(label_img));
        Ok(Volume {
            device,
            device_id,
            cache,
            label,
            data_end: AtomicU64::new(end.0 - 1),
            end_probes: probes,
            online: std::sync::atomic::AtomicBool::new(true),
        })
    }

    /// The volume label.
    #[must_use]
    pub fn label(&self) -> &VolumeLabel {
        &self.label
    }

    /// The cache device id.
    #[must_use]
    pub fn device_id(&self) -> DeviceId {
        self.device_id
    }

    /// Probes spent finding the end at mount time.
    #[must_use]
    pub fn end_probes(&self) -> u64 {
        self.end_probes
    }

    /// Number of data blocks written.
    #[must_use]
    pub fn data_end(&self) -> u64 {
        self.data_end.load(Ordering::Acquire)
    }

    /// Number of data blocks the medium can hold in total.
    #[must_use]
    pub fn data_capacity(&self) -> u64 {
        self.device.capacity_blocks().saturating_sub(1)
    }

    /// Whether every data block has been written.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.data_end() >= self.data_capacity()
    }

    /// Whether the device supports rewriteable tail staging (§2.3.1).
    #[must_use]
    pub fn supports_tail_rewrite(&self) -> bool {
        self.device.supports_tail_rewrite()
    }

    fn key(&self, db: u64) -> CacheKey {
        CacheKey::new(self.device_id, BlockNo(db + 1))
    }

    /// Whether the medium is mounted.
    #[must_use]
    pub fn is_online(&self) -> bool {
        self.online.load(Ordering::Acquire)
    }

    /// Dismounts or remounts the medium (the sequence layer guards against
    /// taking the active volume offline). Dismounting also drops nothing
    /// from the cache — cached blocks of an offline volume remain readable,
    /// exactly like a RAM copy of an archived disk.
    pub fn set_online(&self, online: bool) {
        self.online.store(online, Ordering::Release);
    }

    fn check_online(&self) -> Result<()> {
        if self.is_online() {
            Ok(())
        } else {
            Err(ClioError::VolumeOffline(self.label.volume_index))
        }
    }

    /// Reads data block `db` through the cache.
    pub fn read_data_block(&self, db: u64) -> Result<Arc<Vec<u8>>> {
        if db >= self.data_end() {
            return Err(ClioError::UnwrittenBlock(BlockNo(db + 1)));
        }
        // The online check lives in the loader: a cache hit serves even an
        // offline volume (like a RAM copy of an archived disk); only an
        // actual device read needs the medium.
        self.cache.get_or_load(self.key(db), || {
            self.check_online()?;
            let mut buf = vec![0u8; self.device.block_size()];
            self.device.read_block(BlockNo(db + 1), &mut buf)?;
            Ok(buf)
        })
    }

    /// Reads data block `db` straight from the device, bypassing the
    /// cache — used to *verify* a just-written block, which the cache (by
    /// design write-through) would otherwise mask (§2.3.2 detection).
    pub fn read_data_block_direct(&self, db: u64) -> Result<Vec<u8>> {
        if db >= self.data_end() {
            return Err(ClioError::UnwrittenBlock(BlockNo(db + 1)));
        }
        self.check_online()?;
        let mut buf = vec![0u8; self.device.block_size()];
        self.device.read_block(BlockNo(db + 1), &mut buf)?;
        Ok(buf)
    }

    /// Appends data block `db`, write-through.
    ///
    /// `db` must be the current end, or — when the device stages its tail
    /// in rewriteable RAM — the staged tail block itself, in which case the
    /// append *seals* it onto the write-once medium (§2.3.1).
    pub fn append_data_block(&self, db: u64, image: Vec<u8>) -> Result<()> {
        let end = self.data_end();
        if db != end && db + 1 != end {
            return Err(ClioError::NotAppendOnly {
                attempted: BlockNo(db + 1),
                end: BlockNo(end + 1),
            });
        }
        self.device.append_block(BlockNo(db + 1), &image)?;
        self.cache.put(self.key(db), Arc::new(image));
        self.data_end.store((db + 1).max(end), Ordering::Release);
        Ok(())
    }

    /// Appends a run of data blocks starting at `first_db` in one vectored
    /// device write, write-through.
    ///
    /// As with [`Volume::append_data_block`], `first_db` may be the staged
    /// tail block (sealing it with the batch's first image). On error the
    /// device may have landed a prefix of the batch (a torn batch); the
    /// volume resynchronises `data_end` from the device and caches exactly
    /// the blocks that landed, so the caller can tell how far the write got
    /// from `data_end()` and recovery sees a consistent medium.
    pub fn append_data_blocks(&self, first_db: u64, images: &[Arc<Vec<u8>>]) -> Result<()> {
        if images.is_empty() {
            return Ok(());
        }
        let end = self.data_end();
        if first_db != end && first_db + 1 != end {
            return Err(ClioError::NotAppendOnly {
                attempted: BlockNo(first_db + 1),
                end: BlockNo(end + 1),
            });
        }
        let refs: Vec<&[u8]> = images.iter().map(|i| i.as_slice()).collect();
        let r = self.device.append_blocks(BlockNo(first_db + 1), &refs);
        let landed = match &r {
            Ok(()) => images.len() as u64,
            Err(_) => {
                let dev_end = match self.device.query_end() {
                    Some(e) => e.0,
                    None => locate_end(&*self.device)?.0 .0,
                };
                dev_end
                    .saturating_sub(first_db + 1)
                    .min(images.len() as u64)
            }
        };
        for (i, img) in images.iter().take(landed as usize).enumerate() {
            self.cache.put(self.key(first_db + i as u64), img.clone());
        }
        self.data_end
            .store((first_db + landed).max(end), Ordering::Release);
        r
    }

    /// Rewrites the tail data block in non-volatile staging (devices with a
    /// RAM tail only). `db` may be the block at the current end (opening
    /// the tail) or the last written one (if it is still in the tail
    /// buffer); the device enforces the exact rule.
    pub fn rewrite_tail_data(&self, db: u64, image: Vec<u8>) -> Result<()> {
        self.device.rewrite_tail(BlockNo(db + 1), &image)?;
        self.cache.put(self.key(db), Arc::new(image));
        let end = self.data_end();
        if db >= end {
            self.data_end.store(db + 1, Ordering::Release);
        }
        Ok(())
    }

    /// Burns data block `db` to all 1s (§2.3.2) and drops it from the
    /// cache.
    pub fn invalidate_data_block(&self, db: u64) -> Result<()> {
        self.device.invalidate_block(BlockNo(db + 1))?;
        self.cache.invalidate(self.key(db));
        Ok(())
    }

    /// Flushes the device.
    pub fn sync(&self) -> Result<()> {
        self.device.sync()
    }
}

/// Convenience label constructors used by the sequence layer.
impl Volume {
    /// Builds the label for the first volume of a new sequence.
    #[must_use]
    pub fn first_label(
        volume: VolumeId,
        sequence: VolumeSeqId,
        block_size: usize,
        fanout: u16,
        created: Timestamp,
    ) -> VolumeLabel {
        let mut label = VolumeLabel::first(volume, sequence, block_size as u32, created);
        label.fanout = fanout;
        label
    }
}

#[cfg(test)]
mod tests {
    use clio_device::MemWormDevice;

    use super::*;

    fn fresh(cap: u64) -> Volume {
        let dev: SharedDevice = Arc::new(MemWormDevice::new(256, cap));
        let cache = Arc::new(BlockCache::new(64));
        let label = Volume::first_label(VolumeId(1), VolumeSeqId(2), 256, 16, Timestamp(0));
        Volume::format(dev, 0, cache, label).unwrap()
    }

    #[test]
    fn format_writes_label_and_starts_empty() {
        let v = fresh(10);
        assert_eq!(v.data_end(), 0);
        assert_eq!(v.data_capacity(), 9);
        assert!(!v.is_full());
        assert!(v.read_data_block(0).is_err());
    }

    #[test]
    fn append_then_read_via_cache() {
        let v = fresh(10);
        v.append_data_block(0, vec![7u8; 256]).unwrap();
        v.append_data_block(1, vec![8u8; 256]).unwrap();
        assert_eq!(v.read_data_block(1).unwrap()[0], 8);
        assert_eq!(v.data_end(), 2);
        // Out-of-order appends are rejected.
        assert!(v.append_data_block(5, vec![0u8; 256]).is_err());
    }

    #[test]
    fn open_recovers_end() {
        let dev: SharedDevice = Arc::new(MemWormDevice::new(256, 10).without_end_query());
        let cache = Arc::new(BlockCache::new(64));
        let label = Volume::first_label(VolumeId(1), VolumeSeqId(2), 256, 16, Timestamp(0));
        {
            let v = Volume::format(dev.clone(), 0, cache.clone(), label).unwrap();
            v.append_data_block(0, vec![1u8; 256]).unwrap();
            v.append_data_block(1, vec![2u8; 256]).unwrap();
        }
        // "Crash": new cache, remount from the device alone.
        let cache = Arc::new(BlockCache::new(64));
        let v = Volume::open(dev, 0, cache).unwrap();
        assert_eq!(v.data_end(), 2);
        assert!(v.end_probes() > 0);
        assert_eq!(v.label().volume, VolumeId(1));
        assert_eq!(v.read_data_block(0).unwrap()[0], 1);
    }

    #[test]
    fn open_rejects_unlabelled_device() {
        let dev: SharedDevice = Arc::new(MemWormDevice::new(256, 10));
        dev.append_block(BlockNo(0), &vec![0u8; 256]).unwrap();
        let cache = Arc::new(BlockCache::new(64));
        assert!(Volume::open(dev, 0, cache).is_err());
    }

    #[test]
    fn fills_up() {
        let v = fresh(3);
        v.append_data_block(0, vec![0u8; 256]).unwrap();
        assert!(!v.is_full());
        v.append_data_block(1, vec![0u8; 256]).unwrap();
        assert!(v.is_full());
        assert!(matches!(
            v.append_data_block(2, vec![0u8; 256]).unwrap_err(),
            ClioError::VolumeFull
        ));
    }

    #[test]
    fn invalidate_drops_cache() {
        let v = fresh(10);
        v.append_data_block(0, vec![9u8; 256]).unwrap();
        assert_eq!(v.read_data_block(0).unwrap()[0], 9);
        v.invalidate_data_block(0).unwrap();
        let back = v.read_data_block(0).unwrap();
        assert!(back.iter().all(|&b| b == 0xFF));
    }

    #[test]
    fn batch_append_writes_through_and_advances_end() {
        let v = fresh(10);
        v.append_data_block(0, vec![1u8; 256]).unwrap();
        let images: Vec<Arc<Vec<u8>>> = (2u8..5).map(|i| Arc::new(vec![i; 256])).collect();
        v.append_data_blocks(1, &images).unwrap();
        assert_eq!(v.data_end(), 4);
        for (i, img) in images.iter().enumerate() {
            assert_eq!(v.read_data_block(1 + i as u64).unwrap(), *img);
        }
        // Misplaced batches are rejected without touching the device.
        assert!(v.append_data_blocks(9, &images).is_err());
        assert_eq!(v.data_end(), 4);
        // Empty batches are no-ops.
        v.append_data_blocks(4, &[]).unwrap();
        assert_eq!(v.data_end(), 4);
    }

    #[test]
    fn torn_batch_resyncs_end_from_the_device() {
        use clio_device::{FaultPlan, FaultyDevice};
        let raw = Arc::new(MemWormDevice::new(256, 16));
        let faulty = Arc::new(FaultyDevice::new(raw, FaultPlan::default()));
        let cache = Arc::new(BlockCache::new(64));
        let label = Volume::first_label(VolumeId(1), VolumeSeqId(2), 256, 16, Timestamp(0));
        let v = Volume::format(faulty.clone(), 0, cache, label).unwrap();
        let images: Vec<Arc<Vec<u8>>> = (1u8..5).map(|i| Arc::new(vec![i; 256])).collect();
        faulty.tear_next_batch_after(2);
        assert!(v.append_data_blocks(0, &images).is_err());
        // Two of the four blocks landed; the volume noticed.
        assert_eq!(v.data_end(), 2);
        assert_eq!(v.read_data_block(0).unwrap()[0], 1);
        assert_eq!(v.read_data_block(1).unwrap()[0], 2);
        assert!(v.read_data_block(2).is_err());
        // The write can be resumed where the tear left off.
        v.append_data_blocks(2, &images[2..]).unwrap();
        assert_eq!(v.data_end(), 4);
        assert_eq!(v.read_data_block(3).unwrap()[0], 4);
    }

    #[test]
    fn tail_rewrite_passthrough() {
        use clio_device::RamTailDevice;
        let worm: SharedDevice = Arc::new(MemWormDevice::new(256, 10));
        let dev: SharedDevice = Arc::new(RamTailDevice::new(worm));
        let cache = Arc::new(BlockCache::new(64));
        let label = Volume::first_label(VolumeId(1), VolumeSeqId(2), 256, 16, Timestamp(0));
        let v = Volume::format(dev, 0, cache, label).unwrap();
        assert!(v.supports_tail_rewrite());
        v.rewrite_tail_data(0, vec![1u8; 256]).unwrap();
        v.rewrite_tail_data(0, vec![2u8; 256]).unwrap();
        assert_eq!(v.data_end(), 1);
        assert_eq!(v.read_data_block(0).unwrap()[0], 2);
        // Sealing via append retires the tail.
        v.append_data_block(0, vec![3u8; 256]).unwrap();
        assert_eq!(v.read_data_block(0).unwrap()[0], 3);
    }
}
