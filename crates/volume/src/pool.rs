//! Sources of fresh volumes.
//!
//! When a volume fills up, "a (previously unused) successor volume is
//! loaded" (§2.1) — in a real deployment by an operator or jukebox, here by
//! a [`DevicePool`]. The pool owns the blank media; the sequence layer
//! formats each one as it is consumed.

use std::sync::Arc;

use clio_testkit::sync::Mutex;

use clio_types::Result;

use clio_device::{MemWormDevice, SharedDevice};

/// Supplies previously-unused log devices on demand.
pub trait DevicePool: Send + Sync {
    /// Hands out the next blank device.
    fn next_device(&self) -> Result<SharedDevice>;

    /// How many more devices this pool can still supply, when known.
    /// `None` means unbounded or unknown. Used to validate a shard count
    /// before carving one volume sequence per shard out of the pool.
    fn capacity_hint(&self) -> Option<u64> {
        None
    }
}

/// A pool that fabricates in-memory WORM devices of fixed geometry —
/// the "infinite stack of blank optical disks" used by tests and benches.
pub struct MemDevicePool {
    block_size: usize,
    capacity_blocks: u64,
    handed_out: Mutex<u64>,
    limit: Option<u64>,
}

impl MemDevicePool {
    /// A pool of unlimited blank volumes.
    #[must_use]
    pub fn new(block_size: usize, capacity_blocks: u64) -> MemDevicePool {
        MemDevicePool {
            block_size,
            capacity_blocks,
            handed_out: Mutex::with_class(0, "volume.pool.mem"),
            limit: None,
        }
    }

    /// Limits how many volumes the pool will supply (to test exhaustion).
    #[must_use]
    pub fn with_limit(mut self, limit: u64) -> MemDevicePool {
        self.limit = Some(limit);
        self
    }

    /// Number of devices handed out so far.
    #[must_use]
    pub fn handed_out(&self) -> u64 {
        *self.handed_out.lock()
    }
}

impl DevicePool for MemDevicePool {
    fn next_device(&self) -> Result<SharedDevice> {
        let mut n = self.handed_out.lock();
        if let Some(limit) = self.limit {
            if *n >= limit {
                return Err(clio_types::ClioError::VolumeFull);
            }
        }
        *n += 1;
        Ok(Arc::new(MemWormDevice::new(
            self.block_size,
            self.capacity_blocks,
        )))
    }

    fn capacity_hint(&self) -> Option<u64> {
        self.limit
            .map(|limit| limit.saturating_sub(*self.handed_out.lock()))
    }
}

/// A pool wrapper that records every device it hands out — the standard
/// way tests, benches, and examples simulate a server crash: drop the
/// service, keep the recorded (non-volatile) devices, and recover from
/// them. An optional `wrap` closure decorates each device (RAM tail,
/// fault injection, mirroring) before it reaches the sequence layer.
pub struct RecordingPool {
    inner: Arc<dyn DevicePool>,
    wrap: Option<Box<dyn Fn(SharedDevice) -> SharedDevice + Send + Sync>>,
    devices: Mutex<Vec<SharedDevice>>,
}

impl RecordingPool {
    /// Records devices from `inner` unchanged.
    #[must_use]
    pub fn new(inner: Arc<dyn DevicePool>) -> RecordingPool {
        RecordingPool {
            inner,
            wrap: None,
            devices: Mutex::with_class(Vec::new(), "volume.pool.recording"),
        }
    }

    /// Records devices from `inner`, decorating each with `wrap` first.
    #[must_use]
    pub fn wrapping<F>(inner: Arc<dyn DevicePool>, wrap: F) -> RecordingPool
    where
        F: Fn(SharedDevice) -> SharedDevice + Send + Sync + 'static,
    {
        RecordingPool {
            inner,
            wrap: Some(Box::new(wrap)),
            devices: Mutex::with_class(Vec::new(), "volume.pool.recording"),
        }
    }

    /// Every device handed out so far, in order — the survivors of a
    /// simulated crash.
    #[must_use]
    pub fn devices(&self) -> Vec<SharedDevice> {
        self.devices.lock().clone()
    }
}

impl DevicePool for RecordingPool {
    fn next_device(&self) -> Result<SharedDevice> {
        let base = self.inner.next_device()?;
        let dev = match &self.wrap {
            Some(w) => w(base),
            None => base,
        };
        self.devices.lock().push(dev.clone());
        Ok(dev)
    }

    fn capacity_hint(&self) -> Option<u64> {
        self.inner.capacity_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_hands_out_blank_devices() {
        let pool = MemDevicePool::new(256, 32);
        let a = pool.next_device().unwrap();
        let b = pool.next_device().unwrap();
        assert_eq!(a.block_size(), 256);
        assert_eq!(b.capacity_blocks(), 32);
        assert_eq!(pool.handed_out(), 2);
    }

    #[test]
    fn limit_is_enforced() {
        let pool = MemDevicePool::new(256, 32).with_limit(1);
        assert!(pool.next_device().is_ok());
        assert!(pool.next_device().is_err());
    }

    #[test]
    fn capacity_hint_tracks_the_limit() {
        let pool = MemDevicePool::new(256, 32);
        assert_eq!(pool.capacity_hint(), None);
        let pool = MemDevicePool::new(256, 32).with_limit(2);
        assert_eq!(pool.capacity_hint(), Some(2));
        pool.next_device().unwrap();
        assert_eq!(pool.capacity_hint(), Some(1));
        let rec = RecordingPool::new(Arc::new(pool));
        assert_eq!(rec.capacity_hint(), Some(1));
    }
}
