#![warn(missing_docs)]
//! Log volumes and volume sequences.
//!
//! "A log volume is the removable, physical storage medium … on which log
//! data is stored" (§2). "A log file may span several log volumes. Each log
//! file is totally contained in one log volume sequence — a sequence of log
//! volumes totally ordered by the time of writing. Whenever a volume fills
//! up, a (previously unused) successor volume is loaded, with this
//! successor being logically a continuation of its predecessor." (§2.1)
//!
//! [`Volume`] binds a write-once device to its label and the shared block
//! cache; [`VolumeSequence`] chains volumes and loads successors from a
//! [`DevicePool`].

pub mod pool;
pub mod sequence;
pub mod volume;

pub use pool::{DevicePool, MemDevicePool, RecordingPool};
pub use sequence::VolumeSequence;
pub use volume::Volume;
