//! Volume sequences: chains of volumes ordered by time of writing.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use clio_testkit::sync::RwLock;

use clio_cache::BlockCache;
use clio_device::SharedDevice;
use clio_types::{ClioError, Result, Timestamp, VolumeId, VolumeSeqId};

use crate::pool::DevicePool;
use crate::volume::Volume;

/// A totally ordered chain of volumes holding one log volume sequence.
///
/// "The newest volume in each volume sequence is assumed to be on-line,
/// both for reading and writing. Many of the previous volumes … may also be
/// available for reading (only)" (§2.1). Here every volume stays mounted;
/// the *active* volume (the last) is the only writable one.
pub struct VolumeSequence {
    seq: VolumeSeqId,
    cache: Arc<BlockCache>,
    pool: Arc<dyn DevicePool>,
    volumes: RwLock<Vec<Arc<Volume>>>,
    base_device_id: u32,
    next_device_id: AtomicU32,
}

impl VolumeSequence {
    /// Deterministic volume id for position `index` of sequence `seq`.
    fn volume_id(seq: VolumeSeqId, index: u32) -> VolumeId {
        VolumeId(
            seq.0
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(index)),
        )
    }

    /// Creates a fresh sequence, formatting its first volume from the pool.
    ///
    /// `base_device_id` is the first cache device id this sequence may use
    /// (it uses `base..base+volumes`); the caller partitions the id space
    /// between sequences and any co-resident conventional file systems.
    pub fn create(
        seq: VolumeSeqId,
        cache: Arc<BlockCache>,
        pool: Arc<dyn DevicePool>,
        base_device_id: u32,
        block_size: usize,
        fanout: u16,
        now: Timestamp,
    ) -> Result<VolumeSequence> {
        let device = pool.next_device()?;
        let label = Volume::first_label(Self::volume_id(seq, 0), seq, block_size, fanout, now);
        let v = Volume::format(device, base_device_id, cache.clone(), label)?;
        Ok(VolumeSequence {
            seq,
            cache,
            pool,
            // io class: extend() formats the next device while holding
            // the write guard so the chain stays contiguous.
            volumes: RwLock::with_class_io(vec![Arc::new(v)], "volume.volumes"),
            base_device_id,
            next_device_id: AtomicU32::new(base_device_id + 1),
        })
    }

    /// Mounts an existing sequence from its devices (any order); validates
    /// the chain: matching sequence ids, contiguous indexes, predecessor
    /// links, and uniform geometry.
    pub fn open(
        devices: Vec<SharedDevice>,
        cache: Arc<BlockCache>,
        pool: Arc<dyn DevicePool>,
        base_device_id: u32,
    ) -> Result<VolumeSequence> {
        if devices.is_empty() {
            return Err(ClioError::Internal(
                "cannot open an empty volume set".into(),
            ));
        }
        let mut vols = Vec::with_capacity(devices.len());
        for (i, dev) in devices.into_iter().enumerate() {
            let v = Volume::open(dev, base_device_id + i as u32, cache.clone())?;
            vols.push(Arc::new(v));
        }
        vols.sort_by_key(|v| v.label().volume_index);
        let seq = vols[0].label().sequence;
        for (i, v) in vols.iter().enumerate() {
            let l = v.label();
            if l.sequence != seq {
                return Err(ClioError::Internal(format!(
                    "volume {} belongs to {}, expected {seq}",
                    l.volume, l.sequence
                )));
            }
            if l.volume_index as usize != i {
                return Err(ClioError::Internal(format!(
                    "volume chain has a gap at index {i}"
                )));
            }
            if i > 0 {
                let prev = vols[i - 1].label();
                if l.predecessor != Some(prev.volume) {
                    return Err(ClioError::Internal(format!(
                        "volume {} does not chain to {}",
                        l.volume, prev.volume
                    )));
                }
                if l.block_size != prev.block_size || l.fanout != prev.fanout {
                    return Err(ClioError::Internal("geometry changes mid-sequence".into()));
                }
            }
        }
        let count = vols.len() as u32;
        Ok(VolumeSequence {
            seq,
            cache,
            pool,
            volumes: RwLock::with_class_io(vols, "volume.volumes"),
            base_device_id,
            next_device_id: AtomicU32::new(base_device_id + count),
        })
    }

    /// The sequence id.
    #[must_use]
    pub fn seq_id(&self) -> VolumeSeqId {
        self.seq
    }

    /// The shared block cache.
    #[must_use]
    pub fn cache(&self) -> &Arc<BlockCache> {
        &self.cache
    }

    /// Block size of every volume in the sequence.
    #[must_use]
    pub fn block_size(&self) -> usize {
        self.volumes.read()[0].label().block_size as usize
    }

    /// Entrymap degree of the sequence.
    #[must_use]
    pub fn fanout(&self) -> u16 {
        self.volumes.read()[0].label().fanout
    }

    /// Number of mounted volumes.
    #[must_use]
    pub fn volume_count(&self) -> u32 {
        self.volumes.read().len() as u32
    }

    /// The volume at `index`.
    pub fn volume(&self, index: u32) -> Result<Arc<Volume>> {
        self.volumes
            .read()
            .get(index as usize)
            .cloned()
            .ok_or_else(|| ClioError::NotFound(format!("volume index {index}")))
    }

    /// The newest (writable) volume.
    #[must_use]
    pub fn active(&self) -> Arc<Volume> {
        self.volumes
            .read()
            .last()
            .expect("invariant: create/open seed volume 0 and extend only appends")
            .clone()
    }

    /// Dismounts the volume at `index` (§2.1: older volumes may be taken
    /// off-line and "made available on demand"). The newest volume must
    /// stay mounted — it is the read/write head of the sequence.
    pub fn set_offline(&self, index: u32) -> Result<()> {
        let g = self.volumes.read();
        if index as usize + 1 == g.len() {
            return Err(ClioError::Internal(
                "the active volume cannot be taken offline".into(),
            ));
        }
        let v = g
            .get(index as usize)
            .ok_or_else(|| ClioError::NotFound(format!("volume index {index}")))?;
        v.set_online(false);
        Ok(())
    }

    /// Remounts the volume at `index`.
    pub fn bring_online(&self, index: u32) -> Result<()> {
        let g = self.volumes.read();
        let v = g
            .get(index as usize)
            .ok_or_else(|| ClioError::NotFound(format!("volume index {index}")))?;
        v.set_online(true);
        Ok(())
    }

    /// Loads and formats a successor volume (§2.1), returning it.
    pub fn extend(&self, now: Timestamp) -> Result<Arc<Volume>> {
        let device = self.pool.next_device()?;
        let mut g = self.volumes.write();
        let last = g
            .last()
            .expect("invariant: create/open seed volume 0 and extend only appends");
        let index = last.label().volume_index + 1;
        let label = last
            .label()
            .successor(Self::volume_id(self.seq, index), now);
        let device_id = self.next_device_id.fetch_add(1, Ordering::Relaxed);
        debug_assert!(device_id >= self.base_device_id);
        let v = Arc::new(Volume::format(
            device,
            device_id,
            self.cache.clone(),
            label,
        )?);
        g.push(v.clone());
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::MemDevicePool;

    fn seq() -> VolumeSequence {
        let cache = Arc::new(BlockCache::new(128));
        let pool = Arc::new(MemDevicePool::new(256, 8));
        VolumeSequence::create(VolumeSeqId(5), cache, pool, 0, 256, 16, Timestamp(1)).unwrap()
    }

    #[test]
    fn create_has_one_empty_volume() {
        let s = seq();
        assert_eq!(s.volume_count(), 1);
        assert_eq!(s.block_size(), 256);
        assert_eq!(s.fanout(), 16);
        let v = s.active();
        assert_eq!(v.data_end(), 0);
        assert_eq!(v.label().volume_index, 0);
    }

    #[test]
    fn extend_chains_volumes() {
        let s = seq();
        let v0 = s.active();
        let v1 = s.extend(Timestamp(9)).unwrap();
        assert_eq!(s.volume_count(), 2);
        assert_eq!(v1.label().volume_index, 1);
        assert_eq!(v1.label().predecessor, Some(v0.label().volume));
        assert_eq!(v1.label().sequence, v0.label().sequence);
        assert_eq!(s.active().label().volume, v1.label().volume);
        // Device ids are distinct so the shared cache keeps them apart.
        assert_ne!(v0.device_id(), v1.device_id());
    }

    #[test]
    fn volume_lookup_by_index() {
        let s = seq();
        s.extend(Timestamp(9)).unwrap();
        assert_eq!(s.volume(0).unwrap().label().volume_index, 0);
        assert_eq!(s.volume(1).unwrap().label().volume_index, 1);
        assert!(s.volume(2).is_err());
    }

    #[test]
    fn reopen_validates_and_orders_chain() {
        let cache = Arc::new(BlockCache::new(128));
        let pool = Arc::new(MemDevicePool::new(256, 8));
        let devices;
        {
            // Build a 3-volume sequence, capturing the devices as we go.
            let pool2 = pool.clone();
            struct Capture {
                inner: Arc<MemDevicePool>,
                out: Arc<clio_testkit::sync::Mutex<Vec<SharedDevice>>>,
            }
            impl DevicePool for Capture {
                fn next_device(&self) -> Result<SharedDevice> {
                    let d = self.inner.next_device()?;
                    self.out.lock().push(d.clone());
                    Ok(d)
                }
            }
            let out = Arc::new(clio_testkit::sync::Mutex::new(Vec::new()));
            let cap = Arc::new(Capture {
                inner: pool2,
                out: out.clone(),
            });
            let s = VolumeSequence::create(
                VolumeSeqId(5),
                cache.clone(),
                cap.clone(),
                0,
                256,
                16,
                Timestamp(1),
            )
            .unwrap();
            s.extend(Timestamp(2)).unwrap();
            s.extend(Timestamp(3)).unwrap();
            s.active().append_data_block(0, vec![1u8; 256]).unwrap();
            devices = out.lock().clone();
        }
        // Shuffle the devices; open must sort and validate.
        let mut devices = devices;
        devices.swap(0, 2);
        let s = VolumeSequence::open(devices, Arc::new(BlockCache::new(128)), pool, 0).unwrap();
        assert_eq!(s.volume_count(), 3);
        assert_eq!(s.active().data_end(), 1);
        assert_eq!(s.seq_id(), VolumeSeqId(5));
    }

    #[test]
    fn reopen_rejects_gap() {
        let cache = Arc::new(BlockCache::new(128));
        let pool: Arc<MemDevicePool> = Arc::new(MemDevicePool::new(256, 8));
        // Build two separate sequences and mix their volumes.
        let s1 = VolumeSequence::create(
            VolumeSeqId(1),
            cache.clone(),
            pool.clone(),
            0,
            256,
            16,
            Timestamp(1),
        )
        .unwrap();
        let s2 = VolumeSequence::create(
            VolumeSeqId(2),
            cache.clone(),
            pool.clone(),
            10,
            256,
            16,
            Timestamp(1),
        )
        .unwrap();
        let _ = (s1, s2);
        // Opening a set containing volumes of different sequences fails; we
        // can't easily extract devices from the sequences (by design), so
        // build a fresh mismatched pair directly.
        let d1 = pool.next_device().unwrap();
        let d2 = pool.next_device().unwrap();
        let l1 = Volume::first_label(VolumeId(1), VolumeSeqId(7), 256, 16, Timestamp(0));
        let l2 = Volume::first_label(VolumeId(2), VolumeSeqId(8), 256, 16, Timestamp(0));
        Volume::format(d1.clone(), 0, cache.clone(), l1).unwrap();
        Volume::format(d2.clone(), 1, cache.clone(), l2).unwrap();
        assert!(VolumeSequence::open(vec![d1, d2], cache, pool, 0).is_err());
    }
}
