//! Figure 3: average cost of locating an entry `d` blocks away, without
//! caching, for N ∈ {4, 8, 16, 64, 128}.
//!
//! The paper plots `n = 2·log_N d` entrymap entries examined. We *measure*
//! the implementation: a single entry is placed `d` blocks before the end
//! of a synthetic log and located with a cold locator; we report entrymap
//! entries examined and device block reads alongside the closed form.

use std::collections::BTreeSet;

use clio_bench::report::Report;
use clio_bench::synth::{SyntheticSource, SYNTH_FILE};
use clio_bench::table;
use clio_entrymap::{theory, Locator};

fn main() {
    let mut report = Report::new(
        "fig3_locate",
        "Figure 3 — entrymap entries examined to locate an entry d blocks away (no caching)",
    );
    let fanouts = [4usize, 8, 16, 64, 128];
    let distances: [u64; 8] = [
        10, 100, 1_000, 10_000, 100_000, 1_000_000, 5_000_000, 10_000_000,
    ];
    let mut rows = Vec::new();
    for &d in &distances {
        let mut row = vec![format!("{d}")];
        for &n in &fanouts {
            // Log long enough to hold the distance; search from the end.
            let total = d + 2;
            let target = total - 1 - d;
            let placed: BTreeSet<u64> = [target].into_iter().collect();
            let src = SyntheticSource::new(n, 1024, total, placed);
            let pending = src.pending();
            let mut loc = Locator::new(&src, Some(&pending));
            let got = loc
                .locate_before(&[SYNTH_FILE], total - 1)
                .expect("synthetic source reads cannot fail");
            assert_eq!(got, Some(target), "locator missed the planted entry");
            row.push(format!(
                "{} ({})",
                loc.stats.map_entries_examined,
                table::f2(theory::fig3_locate_cost(n, d as f64))
            ));
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("distance d".to_owned())
        .chain(fanouts.iter().map(|n| format!("N={n} meas(theory)")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("Figure 3 — entrymap entries examined to locate an entry d blocks away (no caching)");
    println!("measured on the real locator over a synthetic volume; theory = 2·log_N d\n");
    print!("{}", table::render(&header_refs, &rows));
    println!(
        "\nPaper's observation holds if N>16 helps little: cost shrinks only ~1/log N with N."
    );
    report.table("entries_examined", &header_refs, &rows);
    report
        .note("Theory column is 2·log_N d; measured on the real locator over a synthetic volume.");
    report.emit();
}
