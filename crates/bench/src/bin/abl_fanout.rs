//! Ablation (§6): the time–space trade-off in choosing N.
//!
//! "We have provided some insight into the time-space trade-off that
//! arises when trying to provide fast read access to log files." A larger
//! degree N makes distant lookups cheaper (Figure 3) but entrymap entries
//! bigger (bitmaps are N bits per active file, §3.5) and recovery dearer
//! (Figure 4). This harness runs the same audit workload at several N on
//! the *real service* and reports all three axes side by side.

use std::sync::Arc;

use clio_bench::report::Report;
use clio_bench::table;
use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_sim::LoginWorkload;
use clio_types::{ManualClock, Timestamp, VolumeSeqId};
use clio_volume::{MemDevicePool, RecordingPool};

fn main() {
    let mut report = Report::new("abl_fanout", "§6 ablation — the N time–space trade-off");
    let mut rows = Vec::new();
    for n in [4u16, 8, 16, 32, 64] {
        let cfg = ServiceConfig {
            fanout: n,
            shards: 1,
            ..ServiceConfig::default()
        };
        let pool = Arc::new(RecordingPool::new(Arc::new(MemDevicePool::new(
            cfg.block_size,
            1 << 18,
        ))));
        let clock = Arc::new(ManualClock::starting_at(Timestamp::from_secs(1)));
        let svc = LogService::create(VolumeSeqId(1), pool.clone(), cfg.clone(), clock.clone())
            .expect("service");
        svc.create_log("/audit").expect("create");
        let mut wl = LoginWorkload::paper_calibrated(5);
        for u in 0..wl.n_users {
            svc.create_log(&format!("/audit/user{u}"))
                .expect("create user");
        }
        // A rare log file whose single old entry forces a distant lookup.
        svc.create_log("/rare").expect("create rare");
        svc.append_path("/rare", b"the needle", AppendOpts::standard())
            .expect("append");
        for (user, payload) in wl.events(10_000) {
            svc.append_path(
                &format!("/audit/user{user}"),
                &payload,
                AppendOpts::standard(),
            )
            .expect("append");
        }
        svc.flush().expect("flush");
        let r = svc.report();

        // Time axis: cold-cache block reads to find /rare's entry from the
        // end of the log.
        svc.cache().clear();
        svc.cache().reset_stats();
        let mut cur = svc.cursor_from_end("/rare").expect("cursor");
        let hit = cur.prev().expect("prev").expect("the needle exists");
        assert_eq!(hit.data, b"the needle");
        let stats = svc.cache().stats();

        // Recovery axis: crash and measure the entrymap rebuild (Fig. 4).
        drop(svc);
        let (_svc, report) =
            LogService::recover(pool.devices(), pool.clone(), cfg, clock).expect("recover");

        rows.push(vec![
            format!("{n}"),
            format!("{}", r.blocks_sealed),
            format!("{:.3}", r.avg_entrymap_overhead),
            format!("{}", r.entrymap_entries),
            format!("{}", stats.misses),
            format!("{}", report.rebuild_blocks_read),
        ]);
    }
    println!(
        "§6 ablation — the N time–space trade-off (10,000 audit entries + 1 distant needle)\n"
    );
    let header = [
        "N",
        "blocks used",
        "entrymap B/entry",
        "entrymap entries",
        "cold lookup reads",
        "recovery reads",
    ];
    print!("{}", table::render(&header, &rows));
    report.table("tradeoff", &header, &rows);
    report.note("Search cost and entrymap bytes fall with N; recovery cost rises — hence N=16–32.");
    println!("\nBoth search cost and per-entry entrymap bytes fall with N (the §3.5 formula");
    println!("o_e ≈ (h + a(N/8 + c'))/(N−1) is dominated by its 1/(N−1) factor while a is");
    println!("fixed) — but recovery cost *rises* with N (Figure 4), which is why the paper");
    println!("settles on N = 16–32 (§3.4): past that, lookups barely improve while every");
    println!("reboot pays N·log_N(b)/2 block reads.");
    report.emit();
}
