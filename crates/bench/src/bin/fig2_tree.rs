//! Figure 2: the example entrymap search tree (N = 4).
//!
//! The paper's figure marks five blocks of one log file within 16 blocks
//! and shows the level-1 bitmaps plus the level-2 bitmap that indexes
//! them. We drive the real [`clio_entrymap::EntrymapWriter`] over the same
//! placement and print the records it emits.

use clio_bench::report::Report;
use clio_entrymap::{EntrymapWriter, Geometry};
use clio_types::LogFileId;

fn main() {
    let mut report = Report::new("fig2_tree", "Figure 2 — entrymap search tree for N = 4");
    let n = 4usize;
    let file = LogFileId(8);
    // Five marked blocks within the first 16, as in the figure.
    let marked = [1u64, 6, 7, 12, 15];
    let mut w = EntrymapWriter::new(Geometry::new(n));
    let mut emitted = Vec::new();
    for db in 0..=16u64 {
        for rec in w.begin_block(db) {
            emitted.push((db, rec));
        }
        if db < 16 {
            let ids: Vec<LogFileId> = if marked.contains(&db) {
                vec![file]
            } else {
                vec![]
            };
            w.note_block(db, ids);
        }
    }
    println!("Figure 2 — entrymap search tree for N = 4, file entries in blocks {marked:?}\n");
    println!(
        "blocks:  {}",
        (0..16)
            .map(|b| if marked.contains(&b) { '#' } else { '.' })
            .collect::<String>()
    );
    let mut rows = Vec::new();
    for (at, rec) in &emitted {
        let bits = rec
            .map_for(file)
            .map(|bm| {
                (0..n)
                    .map(|i| if bm.get(i) { '1' } else { '0' })
                    .collect::<String>()
            })
            .unwrap_or_else(|| "0".repeat(n));
        let cover_lo = rec.group * (n as u64).pow(u32::from(rec.level));
        let cover_hi = (rec.group + 1) * (n as u64).pow(u32::from(rec.level));
        println!(
            "level-{} entrymap entry written at block {:>2}, covering blocks {:>2}..{:>2}: bitmap {}",
            rec.level, at, cover_lo, cover_hi, bits
        );
        rows.push(vec![
            format!("{}", rec.level),
            format!("{at}"),
            format!("{cover_lo}"),
            format!("{cover_hi}"),
            bits,
        ]);
    }
    println!("\nThe level-2 bitmap (written at block 16) marks level-1 groups 0, 1 and 3 — the");
    println!("shape of the tree in the paper's Figure 2.");
    report.scalar("fanout", n);
    report.scalar("marked_blocks", marked.len());
    report.table(
        "entrymap_entries",
        &["level", "written_at", "covers_from", "covers_to", "bitmap"],
        &rows,
    );
    report.note("The level-2 bitmap marks level-1 groups 0, 1 and 3 — the paper's Figure 2 shape.");
    report.emit();
}
