//! Concurrent read scaling: throughput of the lock-free read path under
//! 1/2/4/8 reader threads.
//!
//! The paper's medium is write-once, so sealed blocks are immutable and
//! reads need no coordination with the appender (§2, §3.3). This harness
//! measures what that buys on a modern multi-core host: a volume is
//! pre-built on an in-memory device pool, the sharded block cache is
//! warmed, then T threads hammer random `read_entry` calls mixed with
//! short cursor scans. Aggregate reads/sec should scale with T because
//! readers share only (a) the published snapshot `Arc` and (b) the cache's
//! per-shard mutexes.
//!
//! Flags: `--json` writes `BENCH_conc_read.json`; `--quick` shrinks the
//! workload for CI smoke runs; `--shards=1` restores the single global
//! LRU (the contention baseline).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use clio_bench::report::Report;
use clio_bench::table;
use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_types::{EntryAddr, ManualClock, Timestamp, VolumeSeqId};
use clio_volume::MemDevicePool;

/// One thread's share of the workload: point reads with a splitmix-walked
/// index, plus a short cursor scan every `SCAN_EVERY` point reads. Returns
/// the number of entries read.
fn reader_work(svc: &LogService, addrs: &[EntryAddr], ops: u64, seed: u64, reads: &AtomicU64) {
    const SCAN_EVERY: u64 = 512;
    const SCAN_LEN: usize = 24;
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut done = 0u64;
    for i in 0..ops {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let addr = addrs[(x % addrs.len() as u64) as usize];
        let e = svc.read_entry(addr).expect("prebuilt entry must read");
        assert!(!e.data.is_empty());
        done += 1;
        if i % SCAN_EVERY == SCAN_EVERY - 1 {
            let mut cur = svc.cursor("/bench").expect("cursor");
            for _ in 0..SCAN_LEN {
                match cur.next().expect("scan") {
                    Some(_) => done += 1,
                    None => break,
                }
            }
        }
    }
    reads.fetch_add(done, Ordering::Relaxed);
}

fn run_threads(
    svc: &Arc<LogService>,
    addrs: &Arc<Vec<EntryAddr>>,
    threads: usize,
    ops: u64,
) -> (u64, f64) {
    let total_reads = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let svc = svc.clone();
        let addrs = addrs.clone();
        let total_reads = total_reads.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            reader_work(&svc, &addrs, ops, t as u64 + 1, &total_reads);
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("reader thread");
    }
    let secs = start.elapsed().as_secs_f64();
    (total_reads.load(Ordering::Relaxed), secs)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let shards = args
        .iter()
        .find_map(|a| a.strip_prefix("--shards=").and_then(|v| v.parse().ok()))
        .unwrap_or(8usize);
    let mut report = Report::new(
        "conc_read",
        "Concurrent read scaling — immutable snapshots + sharded block cache",
    );

    let entries: u64 = if quick { 800 } else { 4_000 };
    let ops: u64 = if quick { 4_000 } else { 40_000 };
    let thread_counts: &[usize] = &[1, 2, 4, 8];

    // Build the volume: every entry fits the (default 1024-block) cache
    // after the warm-up pass, so the runs measure pure read-path
    // concurrency, not device speed.
    let cfg = ServiceConfig {
        cache_shards: shards,
        trace_events: 0, // the trace ring is a mutex; keep the hot path atomic-only
        shards: 1,
        ..ServiceConfig::default()
    };
    let svc = Arc::new(
        LogService::create(
            VolumeSeqId(1),
            Arc::new(MemDevicePool::new(cfg.block_size, 1 << 16)),
            cfg,
            Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
        )
        .expect("create service"),
    );
    svc.create_log("/bench").expect("create log");
    let id = svc.resolve("/bench").expect("resolve");
    let mut addrs = Vec::with_capacity(entries as usize);
    for i in 0..entries {
        let payload = [(i % 251) as u8; 64];
        addrs.push(
            svc.append(id, &payload, AppendOpts::standard())
                .expect("append")
                .addr,
        );
    }
    svc.flush().expect("flush");
    let addrs = Arc::new(addrs);

    // Warm the cache with one full pass.
    for a in addrs.iter() {
        svc.read_entry(*a).expect("warm read");
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "Concurrent read scaling — {entries} entries, {ops} point reads/thread, {} cache shards",
        svc.cache().shard_count()
    );
    println!("(warm cache: every data and entrymap block is resident before the timed runs)");
    println!("host parallelism: {cores} core(s) — aggregate reads/sec can only scale up to that\n");

    let mut rows = Vec::new();
    let mut base_rps = 0.0f64;
    let mut rps_by_threads = Vec::new();
    for &t in thread_counts {
        let (reads, secs) = run_threads(&svc, &addrs, t, ops);
        let rps = reads as f64 / secs;
        if t == 1 {
            base_rps = rps;
        }
        let speedup = if base_rps > 0.0 { rps / base_rps } else { 0.0 };
        rps_by_threads.push((t, rps, speedup));
        rows.push(vec![
            format!("{t}"),
            format!("{reads}"),
            format!("{:.1}", secs * 1e3),
            format!("{:.0}", rps),
            format!("{speedup:.2}x"),
        ]);
    }

    let header = [
        "threads",
        "entries read",
        "elapsed (ms)",
        "reads/sec",
        "speedup",
    ];
    print!("{}", table::render(&header, &rows));

    let cache = svc.cache();
    let stats = cache.stats();
    println!(
        "\ncache: {} shards, {} resident, {} hits / {} misses ({} duplicate loads coalesced away)",
        cache.shard_count(),
        cache.len(),
        stats.hits,
        stats.misses,
        stats.duplicate_loads,
    );

    report.scalar("entries", entries);
    report.scalar("ops_per_thread", ops);
    report.scalar("host_cores", cores as u64);
    report.scalar("cache_shards", cache.shard_count() as u64);
    report.scalar("cache_hits", stats.hits);
    report.scalar("cache_misses", stats.misses);
    report.scalar("duplicate_loads", stats.duplicate_loads);
    for (t, rps, speedup) in &rps_by_threads {
        report.scalar(&format!("reads_per_sec_{t}t"), *rps);
        report.scalar(&format!("speedup_{t}t"), *speedup);
    }
    report.table("scaling", &header, &rows);
    report.note(
        "Reads run against immutable published snapshots and never take the append \
         mutex; the block cache is sharded, so warm reads contend only on per-shard LRU locks.",
    );
    report.note(
        "Speedup is bounded by host_cores: on a multi-core host 4 threads should reach \
         >=2x the single-thread rate; on a single core the signal is the flat line — \
         aggregate throughput holding steady at 8 threads means no lock convoy serializes \
         readers beyond the CPU limit.",
    );
    report.emit();

    let four = rps_by_threads
        .iter()
        .find(|(t, _, _)| *t == 4)
        .map(|(_, _, s)| *s)
        .unwrap_or(0.0);
    println!(
        "\n4-thread speedup over 1 thread: {four:.2}x (lock-free snapshot reads, sharded LRU)"
    );
}
