//! Ops-plane endpoint under load: scrape latency of `/metrics`,
//! `/metrics.json` and `/trace` while appenders hammer the service.
//!
//! The observability endpoint must stay cheap and safe to scrape in
//! production: each scrape snapshots the registry (short leaf locks) and
//! the trace ring (one mutex), so a scraper polling every few seconds
//! should never perturb the append path. This harness runs forced
//! appenders in the background and measures end-to-end scrape latency —
//! TCP connect, request, full body — per route, over a plain
//! `std::net::TcpStream` exactly like a scraper would.
//!
//! Flags: `--json` writes `BENCH_obs_http.json`; `--quick` shrinks the
//! workload for CI smoke runs.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use clio_bench::report::Report;
use clio_bench::table;
use clio_core::server::LogServer;
use clio_core::service::LogService;
use clio_core::ServiceConfig;
use clio_types::{ManualClock, Timestamp, VolumeSeqId};
use clio_volume::MemDevicePool;

/// Reports a fatal harness error and exits; scrape numbers from a
/// half-broken run would be worse than no numbers.
fn die(msg: String) -> ! {
    eprintln!("obs_http: {msg}");
    std::process::exit(1);
}

/// One GET over a fresh connection; returns (latency_us, body_bytes).
fn scrape(addr: SocketAddr, path: &str) -> (u64, usize) {
    let start = Instant::now();
    let mut s = TcpStream::connect(addr).unwrap_or_else(|e| die(format!("connect {addr}: {e}")));
    write!(s, "GET {path} HTTP/1.1\r\nHost: bench\r\n\r\n")
        .unwrap_or_else(|e| die(format!("send request for {path}: {e}")));
    let mut response = String::new();
    s.read_to_string(&mut response)
        .unwrap_or_else(|e| die(format!("read response for {path}: {e}")));
    let us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    assert!(
        response.starts_with("HTTP/1.1 200 OK"),
        "scrape {path} failed: {}",
        response.lines().next().unwrap_or("")
    );
    let body_len = response
        .split_once("\r\n\r\n")
        .map_or(0, |(_, body)| body.len());
    (us, body_len)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
    #[allow(clippy::cast_sign_loss)]
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut report = Report::new(
        "obs_http",
        "Ops plane — scrape latency of the HTTP observability endpoint under append load",
    );

    let scrapes_per_route: usize = if quick { 25 } else { 400 };
    let appenders: usize = 2;

    let cfg = ServiceConfig::default().with_http_addr("127.0.0.1:0");
    let svc = LogService::create(
        VolumeSeqId(1),
        Arc::new(MemDevicePool::new(cfg.block_size, 1 << 16)),
        cfg,
        Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
    )
    .unwrap_or_else(|e| die(format!("create service: {e:?}")));
    for t in 0..appenders {
        svc.create_log(&format!("/obs{t}"))
            .unwrap_or_else(|e| die(format!("create log /obs{t}: {e:?}")));
    }
    let server = LogServer::spawn(svc);
    let addr = server
        .http_addr()
        .unwrap_or_else(|| die("endpoint failed to bind 127.0.0.1:0".to_owned()));

    println!("Ops-plane scrape latency — endpoint at {addr}");
    println!(
        "({appenders} forced appenders in the background; {scrapes_per_route} scrapes/route)\n"
    );

    // Background load: forced appends through the IPC boundary, so the
    // scrapes compete with real commit-gate and device activity.
    let stop = Arc::new(AtomicBool::new(false));
    let mut load = Vec::new();
    for t in 0..appenders {
        let client = server.client();
        let stop = stop.clone();
        load.push(std::thread::spawn(move || {
            let path = format!("/obs{t}");
            let payload = [t as u8; 64];
            let mut appends = 0u64;
            while !stop.load(Ordering::Relaxed) {
                client
                    .append_sync(&path, &payload)
                    .unwrap_or_else(|e| die(format!("forced append to {path}: {e:?}")));
                appends += 1;
            }
            appends
        }));
    }

    let header = ["route", "p50 (us)", "p99 (us)", "max (us)", "body (bytes)"];
    let mut rows = Vec::new();
    let routes = ["/metrics", "/metrics.json", "/trace", "/health"];
    for route in routes {
        let mut lat: Vec<u64> = Vec::with_capacity(scrapes_per_route);
        let mut body = 0usize;
        for _ in 0..scrapes_per_route {
            let (us, len) = scrape(addr, route);
            lat.push(us);
            body = body.max(len);
        }
        lat.sort_unstable();
        let p50 = percentile(&lat, 0.50);
        let p99 = percentile(&lat, 0.99);
        let max = *lat
            .last()
            .expect("invariant: the loop above pushed scrapes_per_route >= 1 latencies");
        let key = route.trim_start_matches('/').replace('.', "_");
        report.scalar(&format!("{key}_p50_us"), p50);
        report.scalar(&format!("{key}_p99_us"), p99);
        report.scalar(&format!("{key}_body_bytes"), body as u64);
        rows.push(vec![
            route.to_owned(),
            format!("{p50}"),
            format!("{p99}"),
            format!("{max}"),
            format!("{body}"),
        ]);
    }
    stop.store(true, Ordering::Relaxed);
    let appends: u64 = load
        .into_iter()
        .map(|h| {
            h.join()
                .unwrap_or_else(|_| die("appender thread panicked".to_owned()))
        })
        .sum();

    print!("{}", table::render(&header, &rows));
    println!("\nbackground forced appends completed during the run: {appends}");

    report.scalar("scrapes_per_route", scrapes_per_route as u64);
    report.scalar("background_appends", appends);
    report.table("scrape_latency", &header, &rows);
    report.note(
        "Scrape latency includes TCP connect + a full registry/trace snapshot; it should \
         sit well under a millisecond-scale scrape interval and never block appenders \
         (the endpoint takes only leaf locks).",
    );
    report.emit();

    server.shutdown();
}
