//! Group-commit coalescing: forced-append cost under 1/2/4/8 concurrent
//! appender threads, with and without the group-commit pipeline.
//!
//! Forced appends are the expensive operation of §2.3.1: each one must
//! reach stable storage before it is acknowledged. The group-commit
//! pipeline stages entries under a short lock and lets the first forced
//! waiter become a *leader* that dallies briefly (`commit_wait_us`),
//! drains every sealed block staged meanwhile in one vectored device
//! write, and wakes the covered followers. The headline number is
//! **appends per device write**: the legacy path pays one device write
//! per forced append (ratio ~= 1.0); with group commit, concurrent
//! appenders share writes, so the ratio should exceed 1.5 at 4 threads.
//!
//! Flags: `--json` writes `BENCH_group_commit.json`; `--quick` shrinks
//! the workload for CI smoke runs.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use clio_bench::report::Report;
use clio_bench::table;
use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_obs::{MetricValue, MetricsRegistry};
use clio_types::{ManualClock, Timestamp, VolumeSeqId};
use clio_volume::MemDevicePool;

fn counter(reg: &MetricsRegistry, name: &str) -> u64 {
    for s in reg.gather() {
        if s.name == name {
            if let MetricValue::Counter(v) = s.value {
                return v;
            }
        }
    }
    0
}

struct RoundResult {
    appends: u64,
    device_writes: u64,
    secs: f64,
    writes_saved: u64,
    batches: u64,
}

/// One measured round: `threads` appenders each issue `ops` forced
/// appends to their own log file on a fresh in-memory service.
fn run_round(threads: usize, ops: u64, group: bool) -> RoundResult {
    let cfg = ServiceConfig {
        trace_events: 0, // the trace ring is a mutex; keep the hot path atomic-only
        commit_wait_us: 300,
        shards: 1,
        ..ServiceConfig::default()
    }
    .with_group_commit(group);
    let svc = Arc::new(
        LogService::create(
            VolumeSeqId(1),
            Arc::new(MemDevicePool::new(cfg.block_size, 1 << 16)),
            cfg,
            Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
        )
        .expect("create service"),
    );
    for t in 0..threads {
        svc.create_log(&format!("/gc{t}")).expect("create log");
    }
    svc.flush().expect("flush setup");

    let before = svc.obs().device_stats.snapshot();
    let saved_before = counter(svc.metrics(), "clio_core_forced_writes_saved_total");
    let batches_before = counter(svc.metrics(), "clio_core_group_commit_batches_total");
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let svc = svc.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let id = svc.resolve(&format!("/gc{t}")).expect("resolve");
            let payload = [t as u8; 48];
            barrier.wait();
            for _ in 0..ops {
                svc.append(id, &payload, AppendOpts::forced())
                    .expect("forced append");
            }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("appender thread");
    }
    let secs = start.elapsed().as_secs_f64();
    let after = svc.obs().device_stats.snapshot();
    RoundResult {
        appends: threads as u64 * ops,
        device_writes: after.write_ops().saturating_sub(before.write_ops()),
        secs,
        writes_saved: counter(svc.metrics(), "clio_core_forced_writes_saved_total")
            .saturating_sub(saved_before),
        batches: counter(svc.metrics(), "clio_core_group_commit_batches_total")
            .saturating_sub(batches_before),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut report = Report::new(
        "group_commit",
        "Group commit — forced appends coalesced into vectored device writes",
    );

    let ops: u64 = if quick { 200 } else { 2_000 };
    let thread_counts: &[usize] = &[1, 2, 4, 8];
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    println!("Group-commit coalescing — {ops} forced appends/thread, commit dally 300us");
    println!("(in-memory device pool: the ratio isolates write *count*, not media latency)");
    println!(
        "host parallelism: {cores} core(s) — batching needs appenders overlapping in time; \
         the leader's dally admits followers even on one core\n"
    );

    let header = [
        "threads",
        "mode",
        "appends",
        "device writes",
        "appends/write",
        "saved",
        "batches",
        "elapsed (ms)",
    ];
    let mut rows = Vec::new();
    let mut group_ratio_4t = 0.0f64;
    let mut legacy_ratio_4t = 0.0f64;
    let mut saved_4t = 0u64;
    for &t in thread_counts {
        for group in [true, false] {
            let r = run_round(t, ops, group);
            let ratio = r.appends as f64 / r.device_writes.max(1) as f64;
            if t == 4 && group {
                group_ratio_4t = ratio;
                saved_4t = r.writes_saved;
            }
            if t == 4 && !group {
                legacy_ratio_4t = ratio;
            }
            let mode = if group { "group" } else { "legacy" };
            report.scalar(&format!("appends_per_device_write_{t}t_{mode}"), ratio);
            report.scalar(&format!("forced_writes_saved_{t}t_{mode}"), r.writes_saved);
            rows.push(vec![
                format!("{t}"),
                mode.to_owned(),
                format!("{}", r.appends),
                format!("{}", r.device_writes),
                format!("{ratio:.2}"),
                format!("{}", r.writes_saved),
                format!("{}", r.batches),
                format!("{:.1}", r.secs * 1e3),
            ]);
        }
    }
    print!("{}", table::render(&header, &rows));

    report.scalar("ops_per_thread", ops);
    report.scalar("host_cores", cores as u64);
    report.scalar("commit_wait_us", 300u64);
    report.table("coalescing", &header, &rows);
    report.note(
        "appends/write is the headline: the legacy path pays ~1 device write per forced \
         append; group commit lets concurrent forced appenders share one vectored write, \
         so the ratio grows with thread count (4 threads should exceed 1.5).",
    );
    report.note(
        "On a 1-core container the appenders still overlap — a follower only needs to \
         stage its entry during the leader's 300us dally — but scheduling jitter makes \
         the ratio noisier than on a multi-core host.",
    );
    report.emit();

    println!(
        "\n4-thread appends per device write: {group_ratio_4t:.2} with group commit \
         ({saved_4t} forced writes saved) vs {legacy_ratio_4t:.2} legacy"
    );
}
