//! Runs every table/figure harness in sequence (the EXPERIMENTS.md
//! regeneration entry point).

use std::process::Command;

fn main() {
    let me = std::env::current_exe().expect("own path");
    let dir = me.parent().expect("bin directory").to_path_buf();
    // Forward our arguments (notably `--json`) to every harness.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bins = [
        "fig2_tree",
        "fig3_locate",
        "table1_read",
        "fig4_init",
        "sec33_cold",
        "sec32_write",
        "sec35_space",
        "abl_locators",
        "abl_ramtail",
        "abl_fanout",
        "mot_fs",
        "sec4_hbfs",
        "conc_read",
        "group_commit",
        "multi_shard",
    ];
    let mut failures = 0;
    for bin in bins {
        println!("\n{}", "=".repeat(90));
        println!("== {bin}");
        println!("{}\n", "=".repeat(90));
        let path = dir.join(bin);
        match Command::new(&path).args(&args).status() {
            Ok(s) if s.success() => {}
            Ok(s) => {
                eprintln!("** {bin} exited with {s}");
                failures += 1;
            }
            Err(e) => {
                eprintln!("** could not run {}: {e}", path.display());
                failures += 1;
            }
        }
    }
    if failures > 0 {
        eprintln!("\n{failures} experiment(s) failed");
        std::process::exit(1);
    }
    println!("\nAll experiments completed.");
}
