//! Multi-shard append scaling: forced-append throughput across 1/2/4/8
//! independent append domains.
//!
//! The pre-sharding service serialized every append on one state mutex
//! and one commit gate — more appender threads only meant more
//! contention. Partitioning the service by log-file id into shards gives
//! each domain its own lock, gate, open block and volume sequence, so
//! forced appends to different shards proceed in parallel. The headline
//! number is **appends per second** as the shard count grows with a fixed
//! thread count: flat before this change, near-linear (up to the host's
//! cores) after it.
//!
//! Flags: `--logs=K` sets the appender-thread count (default 8; each
//! thread owns one top-level log, so logs round-robin over shards),
//! `--shards=N` runs a single configuration instead of the 1/2/4/8 sweep
//! (used by CI's `bench_diff` guard: two single runs are diffed on the
//! `forced_append_us` cost scalar), `--quick` shrinks the workload,
//! `--json` writes `BENCH_multi_shard.json`.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use clio_bench::report::Report;
use clio_bench::table;
use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_types::{ManualClock, Timestamp, VolumeSeqId};
use clio_volume::MemDevicePool;

struct RoundResult {
    appends: u64,
    device_writes: u64,
    secs: f64,
}

/// One measured round: `logs` appender threads, each issuing `ops` forced
/// appends to its own top-level log file, on a fresh service with
/// `shards` append domains. Logs get consecutive ids, so they round-robin
/// over the domains.
fn run_round(shards: usize, logs: usize, ops: u64) -> RoundResult {
    let cfg = ServiceConfig {
        trace_events: 0, // the trace ring is a mutex; keep the hot path atomic-only
        shards,
        ..ServiceConfig::default()
    };
    let svc = Arc::new(
        LogService::create(
            VolumeSeqId(1),
            Arc::new(MemDevicePool::new(cfg.block_size, 1 << 16)),
            cfg,
            Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
        )
        .expect("invariant: create on a fresh in-memory pool cannot fail"),
    );
    for t in 0..logs {
        svc.create_log(&format!("/s{t}"))
            .expect("invariant: fresh top-level path cannot collide");
    }
    svc.flush().expect("invariant: in-memory flush cannot fail");

    let before = svc.obs().device_stats.snapshot();
    let barrier = Arc::new(Barrier::new(logs + 1));
    let mut handles = Vec::new();
    for t in 0..logs {
        let svc = svc.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let id = svc
                .resolve(&format!("/s{t}"))
                .expect("invariant: path was created above");
            let payload = [t as u8; 48];
            barrier.wait();
            for _ in 0..ops {
                svc.append(id, &payload, AppendOpts::forced())
                    .expect("invariant: in-memory append cannot fail");
            }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("invariant: appender thread does not panic");
    }
    let secs = start.elapsed().as_secs_f64();
    let after = svc.obs().device_stats.snapshot();
    RoundResult {
        appends: logs as u64 * ops,
        device_writes: after.write_ops().saturating_sub(before.write_ops()),
        secs,
    }
}

fn flag_value(args: &[String], name: &str) -> Option<usize> {
    args.iter()
        .find_map(|a| a.strip_prefix(&format!("--{name}=")))
        .and_then(|v| v.parse().ok())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let logs = flag_value(&args, "logs").unwrap_or(8).max(1);
    let single = flag_value(&args, "shards");
    let mut report = Report::new(
        "multi_shard",
        "Sharded append domains — forced-append scaling across 1/2/4/8 shards",
    );

    let ops: u64 = if quick { 300 } else { 3_000 };
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    report.scalar("host_cores", cores as u64);
    report.scalar("ops_per_thread", ops);
    report.scalar("logs", logs as u64);

    if let Some(shards) = single {
        // Single-configuration mode for CI's regression guard: emit the
        // per-append cost (a direction=up metric) under a shard-agnostic
        // key so two runs at different shard counts diff cleanly.
        println!(
            "Sharded append scaling — single run: {shards} shard(s), {logs} appender \
             thread(s) x {ops} forced appends"
        );
        let r = run_round(shards, logs, ops);
        let per_append_us = r.secs * 1e6 / ops as f64;
        let throughput = r.appends as f64 / r.secs.max(1e-9);
        println!(
            "{} appends in {:.1} ms: {:.0} appends/sec, {:.2} us/append, {} device writes",
            r.appends,
            r.secs * 1e3,
            throughput,
            per_append_us,
            r.device_writes
        );
        report.scalar("forced_append_us", per_append_us);
        report.note(&format!(
            "single-run mode at shards={shards}; forced_append_us is the mean wall-clock \
             cost of one forced append per thread — diff two runs with --direction=up \
             (cost must not rise as shards grow)."
        ));
        report.emit();
        return;
    }

    println!(
        "Sharded append scaling — {logs} appender threads x {ops} forced appends, \
         1/2/4/8 append domains"
    );
    println!("(in-memory device pool: the sweep isolates lock/gate contention, not media)");
    println!("host parallelism: {cores} core(s)\n");

    let header = [
        "shards",
        "appends",
        "appends/sec",
        "us/append",
        "device writes",
        "elapsed (ms)",
    ];
    let mut rows = Vec::new();
    let mut per_shards: Vec<(usize, f64)> = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        let r = run_round(shards, logs, ops);
        let throughput = r.appends as f64 / r.secs.max(1e-9);
        per_shards.push((shards, throughput));
        report.scalar(&format!("appends_per_sec_shards{shards}"), throughput);
        rows.push(vec![
            format!("{shards}"),
            format!("{}", r.appends),
            format!("{throughput:.0}"),
            format!("{:.2}", r.secs * 1e6 / ops as f64),
            format!("{}", r.device_writes),
            format!("{:.1}", r.secs * 1e3),
        ]);
    }
    print!("{}", table::render(&header, &rows));
    report.table("scaling", &header, &rows);

    let t1 = per_shards[0].1;
    let t4 = per_shards[2].1;
    let speedup_4 = t4 / t1.max(1e-9);
    report.scalar("speedup_shards4_vs_1", speedup_4);
    report.note(
        "appends/sec at a fixed thread count is the headline: one shard serializes every \
         forced append on one state lock and one commit gate; with N shards, appends to \
         different domains never contend, so throughput should grow toward min(N, cores)x.",
    );
    if cores == 1 {
        report.note(
            "host_cores == 1: the appender threads time-slice one core, so the sweep is \
             expected to stay flat — the shards remove contention, not CPU time.",
        );
    }
    report.emit();

    println!(
        "\n4-shard speedup over 1 shard at {logs} threads: {speedup_4:.2}x \
         ({t4:.0} vs {t1:.0} appends/sec) on {cores} core(s)"
    );
}
