//! §3.3.2: the cost of an *uncached* distant read, measured end-to-end.
//!
//! "If, on the other hand, a log entry that is being read is located a
//! large distance away, then neither the lower levels of the entrymap
//! search tree nor the log data itself can be expected to be cached. A
//! read of this type is expected to cost several hundred milliseconds."
//!
//! Here the whole service runs on a [`clio_sim::TimedDevice`]: every
//! physical access pays the optical-disk seek/transfer costs on a virtual
//! clock, so the number below is *measured* by driving the real read path
//! cold, not computed from a formula.

use std::sync::Arc;

use clio_bench::report::Report;
use clio_bench::table;
use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_device::{MemWormDevice, SharedDevice};
use clio_sim::{CostClock, CostModel, TimedDevice};
use clio_types::{Timestamp, VolumeSeqId};
use clio_volume::{DevicePool, MemDevicePool};

struct TimedPool {
    inner: MemDevicePool,
    clock: Arc<CostClock>,
    model: CostModel,
}

impl DevicePool for TimedPool {
    fn next_device(&self) -> clio_types::Result<SharedDevice> {
        let _shape = self.inner.next_device()?; // consume for accounting
        Ok(Arc::new(TimedDevice::new(
            Arc::new(MemWormDevice::new(1024, 1 << 20)),
            self.clock.clone(),
            self.model,
        )))
    }
}

fn main() {
    let mut report = Report::new(
        "sec33_cold",
        "§3.3.2 — cost of an uncached distant read, measured end-to-end",
    );
    let model = CostModel::default();
    let clock = Arc::new(CostClock::starting_at(Timestamp::from_secs(1)));
    let pool = Arc::new(TimedPool {
        inner: MemDevicePool::new(1024, 1 << 20),
        clock: clock.clone(),
        model,
    });
    let svc = LogService::create(
        VolumeSeqId(1),
        pool,
        ServiceConfig::default().with_shards(1),
        clock.clone(),
    )
    .expect("service");
    svc.create_log("/needle").expect("create");
    svc.create_log("/hay").expect("create");
    svc.append_path("/needle", b"distant entry", AppendOpts::forced())
        .expect("append");
    // ~20k blocks of hay between the needle and the reader.
    let filler = vec![0x68u8; 480];
    for _ in 0..40_000 {
        svc.append_path("/hay", &filler, AppendOpts::standard())
            .expect("append");
    }
    svc.flush().expect("flush");
    let distance = svc.volumes().active().data_end();

    let mut rows = Vec::new();
    for (label, clear) in [("cold (cache dropped)", true), ("warm (repeat)", false)] {
        if clear {
            svc.cache().clear();
        }
        svc.cache().reset_stats();
        let t0 = Timestamp(clock.elapsed_since(Timestamp::ZERO));
        let mut cur = svc.cursor_from_end("/needle").expect("cursor");
        let hit = cur.prev().expect("prev").expect("needle exists");
        assert_eq!(hit.data, b"distant entry");
        let elapsed_us = clock.elapsed_since(Timestamp::ZERO) - t0.0;
        let s = svc.cache().stats();
        rows.push(vec![
            label.to_owned(),
            format!("{}", s.misses),
            format!("{}", s.hits),
            table::ms(elapsed_us),
        ]);
    }
    println!("§3.3.2 — reading one entry ~{distance} blocks back through the real service");
    println!(
        "on a timed optical device ({} ms seek, {} ms transfer)\n",
        model.optical_seek_us / 1000,
        model.optical_transfer_us / 1000
    );
    let header = [
        "read",
        "device reads (misses)",
        "cache hits",
        "modelled time (ms)",
    ];
    print!("{}", table::render(&header, &rows));
    println!("\nPaper's claim holds if the cold read costs several hundred milliseconds and");
    println!("the repeat costs (near) nothing — \"the cost of a log read operation is");
    println!("determined primarily by the number of cache misses\".");
    report.scalar("distance_blocks", distance);
    report.scalar("optical_seek_us", model.optical_seek_us);
    report.scalar("optical_transfer_us", model.optical_transfer_us);
    report.table("cold_vs_warm", &header, &rows);
    report.note("Read cost is determined primarily by the number of cache misses (§3.3.2).");
    report.emit();
}
