//! Table 1: measured cost of a log entry read, for different search
//! distances, given complete caching (N = 16).
//!
//! Paper's rows (distance, #entrymap entries read, #blocks read, time ms):
//! 0→(0,1,1.46), N→(1,3,2.71), N²→(3,5,3.82), N³→(5,7,5.06),
//! N⁴→(7,9,6.51), N⁵→(9,11,8.10). All blocks were served from the block
//! cache, so time ≈ IPC + 0.6 ms per cached block touched (§3.3.2).
//!
//! We plant one entry `d` blocks before the search start in a synthetic
//! volume, run the real locator, count entrymap entries and blocks
//! touched (including the final read of the target block), and model time
//! with the paper's constants.

use std::collections::BTreeSet;

use clio_bench::report::Report;
use clio_bench::synth::{SyntheticSource, SYNTH_FILE};
use clio_bench::table;
use clio_entrymap::Locator;
use clio_sim::CostModel;

fn main() {
    let mut report = Report::new(
        "table1_read",
        "Table 1 — measured cost of a log entry read vs search distance (complete caching, N=16)",
    );
    let n: u64 = 16;
    let model = CostModel::default();
    let paper = [
        ("0", 0u64, 1u64, 1.46f64),
        ("N", 1, 3, 2.71),
        ("N^2", 3, 5, 3.82),
        ("N^3", 5, 7, 5.06),
        ("N^4", 7, 9, 6.51),
        ("N^5", 9, 11, 8.10),
    ];
    let mut rows = Vec::new();
    for (i, (label, p_maps, p_blocks, p_ms)) in paper.iter().enumerate() {
        let d = n.pow(i as u32);
        let (maps, blocks) = if i == 0 {
            // Distance 0: the entry is in the block at hand — one block
            // read, no entrymap consultation.
            (0, 1)
        } else {
            let total = d + 2;
            let target = total - 1 - d;
            let placed: BTreeSet<u64> = [target].into_iter().collect();
            let src = SyntheticSource::new(n as usize, 1024, total, placed);
            let pending = src.pending();
            let mut loc = Locator::new(&src, Some(&pending));
            let got = loc
                .locate_before(&[SYNTH_FILE], total - 1)
                .expect("synthetic reads cannot fail");
            assert_eq!(got, Some(target));
            // blocks_read includes the final read of the target block —
            // the locator verifies its candidate (§2.1).
            (loc.stats.map_entries_examined, loc.stats.blocks_read)
        };
        let modelled = model.read_us(blocks, 0);
        // §3.3.2's flip side: the same read with nothing cached pays an
        // optical seek per block — "expected to cost several hundred
        // milliseconds".
        let cold = model.read_us(0, blocks);
        rows.push(vec![
            (*label).to_owned(),
            format!("{d}"),
            format!("{maps} (paper {p_maps})"),
            format!("{blocks} (paper {p_blocks})"),
            format!("{} (paper {p_ms:.2})", table::ms(modelled)),
            table::ms(cold),
        ]);
    }
    println!(
        "Table 1 — measured cost of a log entry read vs search distance (complete caching, N=16)"
    );
    println!(
        "time modelled at {} µs IPC + {} µs per cached block (§3.2, §3.3.2)\n",
        model.ipc_local_us, model.cached_block_us
    );
    let header = [
        "distance",
        "(blocks)",
        "# entrymap entries",
        "# blocks read",
        "time (ms)",
        "cold (ms)",
    ];
    print!("{}", table::render(&header, &rows));
    report.scalar("fanout", n);
    report.scalar("ipc_local_us", model.ipc_local_us);
    report.scalar("cached_block_us", model.cached_block_us);
    report.table("read_cost", &header, &rows);
    report.note("Cold column is §3.3.2's uncached case — an optical seek per block read.");
    println!(
        "\nShape check: each extra level of the search tree adds ~2 cached-block reads (~1.2 ms),"
    );
    println!("matching the paper's ~1.1–1.6 ms per row increment. The cold column is §3.3.2's");
    println!("uncached case — ~155 ms per block, 'several hundred milliseconds' per distant read.");
    report.emit();
}
