//! §3.2: the cost of a synchronous log write.
//!
//! Paper: writing a 'null' log entry (header only, full 14-byte header
//! with 64-bit timestamp, N=16, 1 KiB blocks) took 2.0 ms on average;
//! a 50-byte entry 2.9 ms. Of that, 0.5–1 ms was the local IPC, ~400 µs
//! the timestamp, and ~70 µs/entry the entrymap bookkeeping.
//!
//! We run the same experiment against the real service behind the real
//! server boundary (counting actual IPC round trips and entrymap records),
//! then report the modelled 1987 latency decomposition alongside the raw
//! 2026-hardware numbers.

use std::sync::Arc;
use std::time::Instant;

use clio_bench::report::Report;
use clio_bench::table;
use clio_core::server::LogServer;
use clio_core::service::LogService;
use clio_core::ServiceConfig;
use clio_sim::CostModel;
use clio_types::{Timestamp, VolumeSeqId};
use clio_volume::MemDevicePool;

fn main() {
    let mut report = Report::new("sec32_write", "§3.2 — synchronous log write cost");
    let model = CostModel::default();
    let clock = Arc::new(clio_sim::CostClock::starting_at(Timestamp::from_secs(1)));
    let svc = LogService::create(
        VolumeSeqId(1),
        Arc::new(MemDevicePool::new(1024, 1 << 20)),
        ServiceConfig::default().with_shards(1), // 1 KiB blocks, N = 16, as in §3.2
        clock,
    )
    .expect("fresh in-memory service");
    svc.create_log("/bench").expect("create log");
    let server = LogServer::spawn(svc);
    let client = server.client();

    let rounds = 2_000u64;
    let mut rows = Vec::new();
    for (label, payload, paper_ms) in [
        ("null entry", vec![], 2.0f64),
        ("50-byte entry", vec![0x42u8; 50], 2.9),
    ] {
        let t0 = Instant::now();
        for _ in 0..rounds {
            client.append_sync("/bench", &payload).expect("sync append");
        }
        let wall_us = t0.elapsed().as_micros() as f64 / rounds as f64;
        let modelled = model.sync_write_us(payload.len());
        rows.push(vec![
            label.to_owned(),
            format!("{}", payload.len()),
            format!("{} (paper {paper_ms:.1})", table::ms(modelled)),
            format!("{wall_us:.1}"),
        ]);
    }
    println!("§3.2 — synchronous log write cost (client and server on one machine)\n");
    let header = ["write", "payload B", "modelled 1987 ms", "measured 2026 µs"];
    print!("{}", table::render(&header, &rows));
    report.scalar("rounds", rounds);
    report.scalar("ipc_local_us", model.ipc_local_us);
    report.scalar("timestamp_gen_us", model.timestamp_gen_us);
    report.scalar("entrymap_note_us", model.entrymap_note_us);
    report.table("write_cost", &header, &rows);
    println!("\nModelled decomposition (paper's measured components):");
    println!(
        "  IPC (local)          {:>6} µs   (paper 0.5–1 ms)",
        model.ipc_local_us
    );
    println!(
        "  timestamp generation {:>6} µs   (paper ~400 µs)",
        model.timestamp_gen_us
    );
    println!("  server append work   {:>6} µs", model.server_append_us);
    println!(
        "  entrymap bookkeeping {:>6} µs   (paper ~70 µs/entry)",
        model.entrymap_note_us
    );
    println!("  copy (per byte)      {:>6} µs", model.copy_per_byte_us);
    println!(
        "\nActual IPC round trips observed: {}",
        server.ipc_round_trips()
    );
    report.scalar("ipc_round_trips", server.ipc_round_trips());
    report.emit();
    server.shutdown();
}
