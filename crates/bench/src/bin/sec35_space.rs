//! §3.5: space overhead on the login/logout audit file system.
//!
//! Paper: the per-entry overhead is (1) the average header size `h` and
//! (2) the entrymap share `o_e ≤ (h + a(N/8 + c')) / (N − 1)`. For the
//! V-System login/logout file system, measured `c ≈ 1/15` (average entry
//! ≈ 1/15 block) and `a ≈ 8` (log files per entrymap entry), giving
//! `o_e < 0.16` bytes per entry — under 0.2 % of the average entry size.
//!
//! We drive the real service with the calibrated workload and *measure*
//! every quantity from the bytes actually written to the device.

use std::sync::Arc;

use clio_bench::report::Report;
use clio_bench::table;
use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_entrymap::BlockSource as _;
use clio_format::{BlockView, EntrymapRecord};
use clio_sim::LoginWorkload;
use clio_types::{LogFileId, ManualClock, Timestamp, VolumeSeqId};
use clio_volume::MemDevicePool;

fn main() {
    let mut report = Report::new(
        "sec35_space",
        "§3.5 — space overhead on the login/logout audit workload",
    );
    let cfg = ServiceConfig::default().with_shards(1); // 1 KiB, N = 16
    let n = cfg.fanout as f64;
    let block_size = cfg.block_size as f64;
    let svc = LogService::create(
        VolumeSeqId(1),
        Arc::new(MemDevicePool::new(cfg.block_size, 1 << 20)),
        cfg,
        Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
    )
    .expect("fresh in-memory service");

    // The audit hierarchy: one sublog per user under /audit (§2.1's
    // sublog-per-subject pattern).
    svc.create_log("/audit").expect("create /audit");
    let mut wl = LoginWorkload::paper_calibrated(42);
    for u in 0..wl.n_users {
        svc.create_log(&format!("/audit/user{u}"))
            .expect("create user log");
    }
    let events = wl.events(20_000);
    for (user, payload) in &events {
        svc.append_path(
            &format!("/audit/user{user}"),
            payload,
            AppendOpts::standard(),
        )
        .expect("append audit event");
    }
    svc.flush().expect("flush");

    let r = svc.report();
    // Measure `a` (log files per entrymap entry) straight off the device.
    let vol = svc.volumes().volume(0).expect("volume 0");
    let src = DevScan { vol };
    let mut recs = 0u64;
    let mut files = 0u64;
    for db in 0..src.data_end() {
        let img = src.read(db).expect("read block");
        let Ok(view) = BlockView::parse(&img) else {
            continue;
        };
        for e in view.entries() {
            let Ok(e) = e else { break };
            if e.header.id == LogFileId::ENTRYMAP {
                if let Ok(rec) = EntrymapRecord::decode(e.payload) {
                    recs += 1;
                    files += rec.maps.len() as u64;
                }
            }
        }
    }
    let a = files as f64 / recs.max(1) as f64;
    let h = r.avg_header_overhead;
    let d = r.avg_entry_size;
    let c = (d + h) / block_size;
    let o_e = r.avg_entrymap_overhead;
    let o_e_pct = 100.0 * o_e / d;
    // The paper's bound: o_e ≤ (h + a(N/8 + c')) / (N − 1), c' = 2-byte id
    // per bitmap (our per-map constant).
    let bound = (h + a * (n / 8.0 + 2.0)) / (n - 1.0);

    let rows = vec![
        vec![
            "avg entry size d (B)".into(),
            table::f2(d),
            "~64 (c=1/15 of 1 KiB)".into(),
        ],
        vec![
            "c = (d+h)/blocksize".into(),
            format!("{:.4} (~1/{})", c, (1.0 / c).round()),
            "1/15".into(),
        ],
        vec![
            "a (files per entrymap entry)".into(),
            table::f2(a),
            "8".into(),
        ],
        vec![
            "avg header overhead h (B/entry)".into(),
            table::f2(h),
            "4 (minimal) … 14 (full)".into(),
        ],
        vec![
            "entrymap overhead o_e (B/entry)".into(),
            table::f2(o_e),
            "< 0.16 … paper bound".into(),
        ],
        vec![
            "o_e as % of entry size".into(),
            format!("{o_e_pct:.3} %"),
            "< 0.2 %".into(),
        ],
        vec![
            "paper bound (h+a(N/8+c'))/(N-1)".into(),
            table::f2(bound),
            "—".into(),
        ],
    ];
    println!("§3.5 — space overhead on the login/logout audit workload (20,000 entries, 1 KiB blocks, N=16)\n");
    print!(
        "{}",
        table::render(&["quantity", "measured", "paper"], &rows)
    );
    // The service's own one-line space report (same data, Display form).
    println!("\n{r}");
    println!(
        "Paper's conclusion holds if o_e ≪ h: measured o_e/h = {:.3}",
        o_e / h
    );
    report.scalar("entries", r.entries);
    report.scalar("avg_entry_size", d);
    report.scalar("files_per_entrymap_entry", a);
    report.scalar("avg_header_overhead", h);
    report.scalar("entrymap_overhead_per_entry", o_e);
    report.scalar("paper_bound", bound);
    report.scalar("device_bytes", r.device_bytes);
    report.table("quantities", &["quantity", "measured", "paper"], &rows);
    report.note("Paper's conclusion holds if o_e is far below h.");
    report.emit();
}

/// Raw volume scanner.
struct DevScan {
    vol: std::sync::Arc<clio_volume::Volume>,
}

impl clio_entrymap::BlockSource for DevScan {
    fn fanout(&self) -> usize {
        16
    }

    fn data_end(&self) -> u64 {
        self.vol.data_end()
    }

    fn read(&self, db: u64) -> clio_types::Result<std::sync::Arc<Vec<u8>>> {
        self.vol.read_data_block(db)
    }
}
