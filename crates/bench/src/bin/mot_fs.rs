//! §1 motivation: standard file systems vs log files on large, continually
//! growing files.
//!
//! Two claims are measured against our own conventional substrates:
//!
//! 1. "In indirect block file systems (such as Unix), blocks at the tail
//!    end of such files become increasingly expensive to read and write."
//!    — measured as device accesses to append/read one tail block as the
//!    file grows through direct → single-indirect → double-indirect.
//! 2. "In extent-based file systems, such files use up many extents" —
//!    measured as extent counts for slowly growing files interleaved with
//!    other allocation.
//!
//! The log file comparison point: an append is one (amortized) sequential
//! block write with no per-append metadata access, at any size.

use std::sync::Arc;

use clio_bench::report::Report;
use clio_bench::table;
use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_device::MemBlockStore;
use clio_fs::{ExtentFs, FileSystem};
use clio_types::{ManualClock, Timestamp, VolumeSeqId};
use clio_volume::MemDevicePool;

fn main() {
    let mut report = Report::new(
        "mot_fs",
        "§1 motivation — standard file systems vs log files on growing files",
    );
    indirect_block_costs(&mut report);
    extent_fragmentation(&mut report);
    log_file_comparison(&mut report);
    report.emit();
}

fn indirect_block_costs(report: &mut Report) {
    let bs = 512usize;
    let fs = FileSystem::mkfs(MemBlockStore::new(bs, 20_000), 64).expect("mkfs");
    let ino = fs.create("/grow").expect("create");
    let block = vec![0xA5u8; bs];
    let mut rows = Vec::new();
    // Grow the file one block at a time; sample access costs at sizes that
    // cross the indirection boundaries (512 B blocks: direct ≤ 10 blocks,
    // single ≤ 74, double beyond).
    let samples = [5u64, 9, 40, 74, 200, 1000, 4000];
    let mut size = 0u64;
    for &target in &samples {
        while size < target {
            fs.append(ino, &block).expect("append");
            size += 1;
        }
        fs.reset_counters();
        fs.append(ino, &block).expect("append");
        size += 1;
        let ap = fs.counters();
        fs.reset_counters();
        let mut buf = vec![0u8; bs];
        fs.read_at(ino, (size - 1) * bs as u64, &mut buf)
            .expect("tail read");
        let rd = fs.counters();
        rows.push(vec![
            format!("{size}"),
            format!("{}", fs.indirection_depth(size - 1)),
            format!("{}", ap.total()),
            format!("{}", rd.total()),
        ]);
    }
    println!("§1(a) — indirect-block FS: device accesses per tail operation as a file grows (512 B blocks)\n");
    let header = [
        "file blocks",
        "indirection",
        "append accesses",
        "tail-read accesses",
    ];
    print!("{}", table::render(&header, &rows));
    report.table("indirect_block_fs", &header, &rows);
    println!();
}

fn extent_fragmentation(report: &mut Report) {
    // Four slowly growing files interleaved — the §1 log-file scenario.
    let mut fs = ExtentFs::new(1 << 20);
    let files: Vec<u32> = (0..4).map(|_| fs.create()).collect();
    let mut rows = Vec::new();
    for round in 1..=5u32 {
        for _ in 0..200 {
            for &f in &files {
                fs.append(f, 1).expect("extent append");
            }
        }
        let f0 = files[0];
        rows.push(vec![
            format!("{}", round * 200),
            format!("{}", fs.extent_count(f0).expect("extents")),
            format!("{}", fs.sequential_read_seeks(f0).expect("seeks")),
        ]);
    }
    println!("§1(b) — extent-based FS: fragmentation of one of four interleaved growing files\n");
    let header = ["appends per file", "extents", "seeks for sequential read"];
    print!("{}", table::render(&header, &rows));
    report.table("extent_fs", &header, &rows);
    println!();
}

fn log_file_comparison(report: &mut Report) {
    // The same growth pattern as §1(a), as a log file: count device
    // appends per entry (always amortized-one, no metadata).
    let cfg = ServiceConfig {
        block_size: 512,
        shards: 1,
        ..ServiceConfig::default()
    };
    let svc = LogService::create(
        VolumeSeqId(1),
        Arc::new(MemDevicePool::new(512, 1 << 20)),
        cfg,
        Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
    )
    .expect("service");
    svc.create_log("/grow").expect("create");
    let payload = vec![0xA5u8; 400];
    for _ in 0..4000 {
        svc.append_path("/grow", &payload, AppendOpts::standard())
            .expect("append");
    }
    svc.flush().expect("flush");
    let r = svc.report();
    println!("§1(c) — the same growth as a Clio log file (400 B entries, 512 B blocks):");
    println!(
        "  4000 appends consumed {} sequential blocks; {:.3} device writes per entry, 0 metadata reads, at any size.",
        r.blocks_sealed,
        r.blocks_sealed as f64 / 4000.0
    );
    // The one-line Display of the service's own space accounting.
    println!("  {r}");
    report.scalar("log_file_appends", 4000u64);
    report.scalar("log_file_blocks_sealed", r.blocks_sealed);
    report.scalar("device_writes_per_entry", r.blocks_sealed as f64 / 4000.0);
    report.note("(a) grows with file size, (b) grows with interleaving, (c) stays flat.");
    println!(
        "\nThe paper's motivation holds if (a) grows with file size, (b) grows with interleaving,"
    );
    println!("and (c) stays flat.");
}
