//! §4 / §4.1: the history-based storage model's cache economics.
//!
//! Two reproductions:
//!
//! 1. The §4 arithmetic: with 100 ms per 1 KiB from the log device, 30 ms
//!    from a magnetic-disk cache and 1 ms from RAM, a RAM cache wins read
//!    performance whenever its hit ratio is at least ~70% of the disk
//!    cache's.
//! 2. The §4.1 feasibility check: over an Ousterhout-style trace (short
//!    file lifetimes, recency-skewed reads), a modest RAM cache reaches
//!    the hit ratios that make the history-based file server practical
//!    ("cache miss ratios of less than 10% are possible with a cache size
//!    of only 16 Mbytes").

use clio_bench::report::Report;
use clio_bench::table;
use clio_cache::{BlockCache, CacheKey};
use clio_sim::workload::{TraceEvent, TraceWorkload};
use clio_sim::CostModel;
use clio_types::BlockNo;

fn main() {
    let mut report = Report::new(
        "sec4_hbfs",
        "§4/§4.1 — history-based storage model cache economics",
    );
    crossover(&mut report);
    trace_hit_ratios(&mut report);
    report.emit();
}

fn crossover(report: &mut Report) {
    let m = CostModel::default();
    let h_disk = 0.9;
    let frac = m.hbfs_crossover_fraction(h_disk);
    let mut rows = Vec::new();
    for pct in [50u32, 60, 70, 80, 90, 100] {
        let h_ram = h_disk * pct as f64 / 100.0;
        let ram = m.hbfs_ram_read_us(h_ram) / 1000.0;
        let disk = m.hbfs_disk_read_us(h_disk) / 1000.0;
        rows.push(vec![
            format!("{pct}%"),
            format!("{ram:.1}"),
            format!("{disk:.1}"),
            if ram < disk {
                "RAM".into()
            } else {
                "disk".into()
            },
        ]);
    }
    println!("§4 — RAM vs magnetic-disk cache for a history-based application");
    println!(
        "(log-device miss 100 ms, disk cache 30 ms, RAM cache 1 ms per KiB; disk hit ratio 90%)\n"
    );
    let header = [
        "RAM hit ratio / disk's",
        "RAM read ms",
        "disk read ms",
        "winner",
    ];
    print!("{}", table::render(&header, &rows));
    println!(
        "\nAnalytic crossover: RAM wins above {:.1}% of the disk cache's hit ratio (paper: 70%).\n",
        100.0 * frac
    );
    report.scalar("crossover_fraction", frac);
    report.table("ram_vs_disk", &header, &rows);
}

fn trace_hit_ratios(report: &mut Report) {
    // Model each file as a handful of 1 KiB blocks; run the trace's reads
    // through an LRU of varying capacity and measure hit ratios.
    let trace = TraceWorkload::new(17).trace(4_000);
    let mut rows = Vec::new();
    for cache_kib in [64usize, 256, 1024, 4096, 16384] {
        let cache = BlockCache::new(cache_kib);
        let mut accesses = 0u64;
        for ev in &trace {
            match ev {
                TraceEvent::Create { .. } | TraceEvent::Delete { .. } => {}
                TraceEvent::Write { file, bytes } => {
                    // Writes populate the cache (the current state is the
                    // cached summary, §4).
                    for blk in 0..bytes.div_ceil(1024) {
                        cache.put(
                            CacheKey::new(0, BlockNo(file * 1024 + blk)),
                            std::sync::Arc::new(vec![]),
                        );
                    }
                }
                TraceEvent::Read { file, bytes } => {
                    for blk in 0..bytes.div_ceil(1024) {
                        accesses += 1;
                        let key = CacheKey::new(0, BlockNo(file * 1024 + blk));
                        if cache.get(key).is_none() {
                            cache.put(key, std::sync::Arc::new(vec![]));
                        }
                    }
                }
            }
        }
        let s = cache.stats();
        let hit = s.hit_ratio();
        let m = CostModel::default();
        rows.push(vec![
            format!("{} KiB", cache_kib),
            format!("{:.1}%", 100.0 * hit),
            format!("{:.1}%", 100.0 * (1.0 - hit)),
            format!("{:.1}", m.hbfs_ram_read_us(hit) / 1000.0),
        ]);
        let _ = accesses;
    }
    println!("§4.1 — RAM-cache hit ratio over an Ousterhout-style trace (4,000 file lifetimes)\n");
    let header = [
        "RAM cache size",
        "hit ratio",
        "miss ratio",
        "modelled read ms/KiB",
    ];
    print!("{}", table::render(&header, &rows));
    println!(
        "\nFeasibility holds if the miss ratio falls under ~10% at moderate cache sizes (§4.1)."
    );
    report.table("trace_hit_ratios", &header, &rows);
    report.note("Feasibility holds if the miss ratio falls under ~10% at moderate cache sizes.");
}
