//! Ablation (§2.3.1): forced writes on a pure write-once device vs one
//! with a battery-backed RAM tail.
//!
//! "On a (purely) write-once log device, frequent forced writes can lead
//! to considerable internal fragmentation, since a block, once written,
//! cannot be rewritten to fill in additional contents. Ideally, in order
//! to efficiently support frequent forced writes, the tail end of the log
//! device is implemented as rewriteable non-volatile storage."
//!
//! We run the same transaction workload (buffered updates + forced commit)
//! against both device configurations and compare blocks consumed and
//! internal fragmentation.

use std::sync::Arc;

use clio_bench::report::Report;
use clio_bench::table;
use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_device::{RamTailDevice, SharedDevice};
use clio_sim::workload::TxnWorkload;
use clio_types::{ManualClock, Timestamp, VolumeSeqId};
use clio_volume::{DevicePool, MemDevicePool};

/// Wraps a pool's devices with RAM-tail staging.
struct RamTailPool(MemDevicePool);

impl DevicePool for RamTailPool {
    fn next_device(&self) -> clio_types::Result<SharedDevice> {
        Ok(Arc::new(RamTailDevice::new(self.0.next_device()?)))
    }
}

fn run(ram_tail: bool, txns: usize) -> (u64, u64, u64) {
    let cfg = ServiceConfig::default().with_shards(1);
    let pool: Arc<dyn DevicePool> = if ram_tail {
        Arc::new(RamTailPool(MemDevicePool::new(cfg.block_size, 1 << 20)))
    } else {
        Arc::new(MemDevicePool::new(cfg.block_size, 1 << 20))
    };
    let svc = LogService::create(
        VolumeSeqId(1),
        pool,
        cfg,
        Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
    )
    .expect("fresh service");
    svc.create_log("/txn").expect("create log");
    let mut wl = TxnWorkload::new(11, 4, 48);
    for txn in wl.transactions(txns) {
        for up in &txn.updates {
            svc.append_path("/txn", up, AppendOpts::standard())
                .expect("update");
        }
        // The commit forces the log (§2.3.1).
        svc.append_path("/txn", &txn.commit, AppendOpts::forced())
            .expect("commit");
    }
    svc.flush().expect("flush");
    let r = svc.report();
    (r.blocks_sealed, r.padding_bytes, r.device_bytes)
}

fn main() {
    let mut report = Report::new(
        "abl_ramtail",
        "§2.3.1 ablation — forced writes: pure write-once vs battery-backed RAM tail",
    );
    let txns = 500;
    let (worm_blocks, worm_pad, worm_bytes) = run(false, txns);
    let (ram_blocks, ram_pad, ram_bytes) = run(true, txns);
    let rows = vec![
        vec![
            "pure write-once".into(),
            format!("{worm_blocks}"),
            format!("{worm_pad}"),
            format!("{worm_bytes}"),
        ],
        vec![
            "battery-backed RAM tail".into(),
            format!("{ram_blocks}"),
            format!("{ram_pad}"),
            format!("{ram_bytes}"),
        ],
    ];
    println!("§2.3.1 ablation — {txns} transactions (4 buffered updates + 1 forced commit each), 1 KiB blocks\n");
    let header = ["device", "blocks sealed", "padding bytes", "device bytes"];
    print!("{}", table::render(&header, &rows));
    let saving = 100.0 * (1.0 - ram_bytes as f64 / worm_bytes as f64);
    println!(
        "\nRAM-tail staging eliminates the early-seal fragmentation: {:.1}% fewer device bytes,",
        saving
    );
    println!(
        "{:.1}x fewer sealed blocks for identical durability.",
        worm_blocks as f64 / ram_blocks.max(1) as f64
    );
    report.scalar("transactions", txns as u64);
    report.scalar("device_bytes_saving_pct", saving);
    report.scalar(
        "sealed_block_ratio",
        worm_blocks as f64 / ram_blocks.max(1) as f64,
    );
    report.table("fragmentation", &header, &rows);
    report.note("RAM-tail staging eliminates the early-seal fragmentation of forced writes.");
    report.emit();
}
