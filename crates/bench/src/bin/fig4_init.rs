//! Figure 4: average cost of reconstructing entrymap information at
//! server initialization, against the number of written blocks `b`, for
//! N ∈ {4, 8, 16, 64, 128}.
//!
//! Theory: `n = (N·log_N b)/2` blocks examined on average (§3.4) — note
//! the *increase* with N, the flip side of Figure 3. We run the real
//! rebuild ([`clio_entrymap::rebuild_pending`]) over synthetic volumes and
//! average over several end phases (the cost oscillates with `b mod N^l`).

use std::collections::BTreeSet;

use clio_bench::report::Report;
use clio_bench::synth::SyntheticSource;
use clio_bench::table;
use clio_entrymap::{rebuild_pending, theory};

fn main() {
    let mut report = Report::new(
        "fig4_init",
        "Figure 4 — blocks examined to reconstruct entrymap information at initialization",
    );
    let fanouts = [4usize, 8, 16, 64, 128];
    let sizes: [u64; 5] = [100, 1_000, 10_000, 100_000, 1_000_000];
    let phases = 16u64;
    let mut rows = Vec::new();
    for &b in &sizes {
        let mut row = vec![format!("{b}")];
        for &n in &fanouts {
            let mut total_reads = 0u64;
            for j in 0..phases {
                // Sample end positions spread across boundary phases.
                let end = b + j * (b / (2 * phases)).max(1);
                // Sparse entries so level-1 scans see realistic blocks.
                let placed: BTreeSet<u64> = (0..end).step_by(7).collect();
                let src = SyntheticSource::new(n, 1024, end, placed);
                let (_, stats) = rebuild_pending(&src).expect("synthetic reads cannot fail");
                total_reads += stats.blocks_read;
            }
            let avg = total_reads as f64 / phases as f64;
            row.push(format!(
                "{} ({})",
                table::f2(avg),
                table::f2(theory::fig4_rebuild_cost(n, b as f64))
            ));
        }
        rows.push(row);
    }
    let header: Vec<String> = std::iter::once("blocks b".to_owned())
        .chain(fanouts.iter().map(|n| format!("N={n} meas(theory)")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    println!("Figure 4 — blocks examined to reconstruct entrymap information at initialization");
    println!("measured via the real recovery rebuild, averaged over {phases} end phases; theory = (N·log_N b)/2\n");
    print!("{}", table::render(&header_refs, &rows));
    println!("\nPaper's observation holds if cost *increases* with N (opposite of Figure 3),");
    println!("keeping the N = 16–32 sweet spot (§3.4).");
    report.scalar("phases_averaged", phases);
    report.table("rebuild_reads", &header_refs, &rows);
    report.note("Theory column is (N·log_N b)/2; cost increases with N — Figure 3's flip side.");
    report.emit();
}
