//! Compares two `BENCH_<name>.json` reports and exits nonzero on
//! regressions.
//!
//! ```text
//! bench_diff OLD.json NEW.json [--threshold=20] [--direction=up|down|both]
//! ```
//!
//! Every numeric scalar and numeric table cell present in both reports is
//! compared as a relative change; moves past the threshold in the bad
//! direction (default: increases, the right polarity for latency-shaped
//! numbers) are printed as `REGRESSION` lines and make the exit code 1.
//! Keys present in only one report are listed as skipped, not failed, so
//! adding a metric to a bench does not break an older baseline.

use clio_bench::diff::{diff, render, DiffOptions, Direction};

fn usage() -> ! {
    eprintln!("usage: bench_diff OLD.json NEW.json [--threshold=PCT] [--direction=up|down|both]");
    std::process::exit(2);
}

fn main() {
    let mut files = Vec::new();
    let mut opts = DiffOptions::default();
    for arg in std::env::args().skip(1) {
        if let Some(v) = arg.strip_prefix("--threshold=") {
            match v.parse::<f64>() {
                Ok(t) if t >= 0.0 => opts.threshold_pct = t,
                _ => {
                    eprintln!("bench_diff: bad threshold {v:?}");
                    usage();
                }
            }
        } else if let Some(v) = arg.strip_prefix("--direction=") {
            match Direction::parse(v) {
                Some(d) => opts.direction = d,
                None => {
                    eprintln!("bench_diff: bad direction {v:?} (want up, down or both)");
                    usage();
                }
            }
        } else if arg.starts_with("--") {
            eprintln!("bench_diff: unknown flag {arg}");
            usage();
        } else {
            files.push(arg);
        }
    }
    let [old_path, new_path] = files.as_slice() else {
        usage();
    };

    let read = |path: &str| -> clio_obs::json::Value {
        let body = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("bench_diff: read {path}: {e}");
            std::process::exit(2);
        });
        clio_obs::json::parse(&body).unwrap_or_else(|e| {
            eprintln!("bench_diff: parse {path}: {e:?}");
            std::process::exit(2);
        })
    };
    let old = read(old_path);
    let new = read(new_path);

    let (ob, nb) = (
        old.get("bench").and_then(clio_obs::json::Value::as_str),
        new.get("bench").and_then(clio_obs::json::Value::as_str),
    );
    if ob != nb {
        eprintln!("bench_diff: comparing different benches: {ob:?} vs {nb:?}");
    }

    let outcome = diff(&old, &new, &opts);
    print!("{}", render(&outcome, &opts));
    if !outcome.regressions.is_empty() {
        std::process::exit(1);
    }
}
