//! Ablation (§5.1): entrymap tree vs a Daniels-style binary tree vs the
//! naive full scan.
//!
//! Scenario: a log file wrote entries (one per 16 blocks) for a long
//! stretch, then went quiet while other log files kept the volume growing;
//! a reader at the tail asks for the file's most recent entry — `d` blocks
//! back. This is the paper's "most frequent accesses to large logs are to
//! those entries that were written most recently" pattern with a twist of
//! distance.
//!
//! Costs: the entrymap search is `~2·log_N(d)` in the *distance*; a
//! balanced binary tree over the file's `m` entry blocks costs `~log2(m)`
//! regardless of distance; the naive scan costs `d`. The paper's §5.1
//! claim — both are logarithmic, ours needs significantly fewer reads for
//! very distant entries — appears as the entrymap column staying below the
//! binary-tree column across the sweep.

use std::collections::BTreeSet;

use clio_bench::report::Report;
use clio_bench::synth::{SyntheticSource, SYNTH_FILE};
use clio_bench::table;
use clio_entrymap::binary_tree::BinaryTreeIndex;
use clio_entrymap::{theory, Locator};

fn main() {
    let mut report = Report::new(
        "abl_locators",
        "§5.1 ablation — entrymap vs binary tree vs naive scan",
    );
    let total: u64 = 1 << 21;
    let stride = 16u64;
    let mut rows = Vec::new();
    for exp in [4u32, 8, 12, 16, 20] {
        let d = 1u64 << exp;
        // Entries every `stride` blocks up to the quiet point.
        let quiet_from = total - d;
        let placed: BTreeSet<u64> = (0..quiet_from).step_by(stride as usize).collect();
        let m = placed.len() as u64;
        let expect = *placed.iter().next_back().expect("non-empty placement");
        let src = SyntheticSource::new(16, 1024, total, placed.clone());
        let pending = src.pending();

        let mut loc = Locator::new(&src, Some(&pending));
        let got = loc
            .locate_before(&[SYNTH_FILE], total - 1)
            .expect("synthetic reads cannot fail");
        assert_eq!(got, Some(expect), "entrymap found the wrong entry");

        let mut bt = BinaryTreeIndex::new();
        for &b in &placed {
            bt.note_block(b, SYNTH_FILE);
        }
        let bl = bt.locate_before(SYNTH_FILE, total - 1);
        assert_eq!(bl.block, Some(expect), "binary tree found the wrong entry");

        rows.push(vec![
            format!("2^{exp}"),
            format!("{m}"),
            format!(
                "{} (theory {})",
                loc.stats.blocks_read,
                table::f2(theory::fig3_locate_cost(16, d as f64))
            ),
            format!("{}", bl.reads),
            format!("{d}"),
        ]);
    }
    println!("§5.1 ablation — block reads to find a log file's most recent entry, d blocks back");
    println!("(2M-block volume; the file has one entry per 16 blocks until it goes quiet)\n");
    let header = [
        "distance d",
        "file blocks m",
        "entrymap reads",
        "binary-tree reads (~log2 m)",
        "naive reads (=d)",
    ];
    print!("{}", table::render(&header, &rows));
    println!("\nPaper's claim (§5.1) holds if the entrymap column stays below the binary-tree");
    println!("column throughout — with N=16, 2·log_16 d = 0.5·log2 d.");
    report.scalar("volume_blocks", total);
    report.scalar("entry_stride_blocks", stride);
    report.table("locator_reads", &header, &rows);
    report.note("Claim holds if the entrymap column stays below the binary-tree column.");
    report.emit();
}
