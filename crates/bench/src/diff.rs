//! Regression diffing for `BENCH_<name>.json` reports.
//!
//! [`diff`] compares two reports produced by [`crate::report::Report`]:
//! every numeric scalar and every numeric table cell present in both is
//! compared as a relative change, and changes past a threshold in the
//! bad direction are reported as regressions. The `bench_diff` binary
//! wraps this for CI: `bench_diff OLD.json NEW.json [--threshold=20]
//! [--direction=up]`, exiting nonzero when regressions are found.
//!
//! "Bad direction" is a property of the metric family, not of the tool —
//! a latency going up and a throughput going down are both regressions —
//! so the direction is a flag: `up` (default; bigger is worse), `down`
//! (smaller is worse), or `both` (any drift past the threshold).

use crate::report::Report;
use clio_obs::json::Value;

/// Which direction of change counts as a regression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// An increase past the threshold regresses (latencies, costs).
    Up,
    /// A decrease past the threshold regresses (throughputs, ratios).
    Down,
    /// Any change past the threshold regresses.
    Both,
}

impl Direction {
    /// Parses a `--direction=` value.
    #[must_use]
    pub fn parse(s: &str) -> Option<Direction> {
        match s {
            "up" => Some(Direction::Up),
            "down" => Some(Direction::Down),
            "both" => Some(Direction::Both),
            _ => None,
        }
    }
}

/// Comparison tunables.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Relative change (percent) past which a bad-direction move is a
    /// regression.
    pub threshold_pct: f64,
    /// Which direction of change is bad.
    pub direction: Direction,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            threshold_pct: 20.0,
            direction: Direction::Up,
        }
    }
}

/// One value that moved past the threshold in the bad direction.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Where the value lives, e.g. `scalars.p99_us` or
    /// `tables.rows[3].cost`.
    pub key: String,
    /// The old (baseline) value.
    pub old: f64,
    /// The new value.
    pub new: f64,
    /// Relative change, percent (positive = increase).
    pub change_pct: f64,
}

/// The outcome of one report comparison.
#[derive(Debug, Clone, Default)]
pub struct DiffOutcome {
    /// Numeric values compared in both reports.
    pub compared: usize,
    /// Keys present in only one report, or non-numeric in either.
    pub skipped: Vec<String>,
    /// Values that regressed.
    pub regressions: Vec<Regression>,
}

/// Compares two reports (as parsed JSON documents).
#[must_use]
pub fn diff(old: &Value, new: &Value, opts: &DiffOptions) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    diff_scalars(old, new, opts, &mut out);
    diff_tables(old, new, opts, &mut out);
    out
}

/// Renders an outcome as the text `bench_diff` prints.
#[must_use]
pub fn render(outcome: &DiffOutcome, opts: &DiffOptions) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "compared {} value(s), threshold {}%, direction {:?}",
        outcome.compared, opts.threshold_pct, opts.direction
    );
    for k in &outcome.skipped {
        let _ = writeln!(s, "  skipped: {k}");
    }
    if outcome.regressions.is_empty() {
        let _ = writeln!(s, "no regressions");
    } else {
        for r in &outcome.regressions {
            let _ = writeln!(
                s,
                "REGRESSION {}: {} -> {} ({:+.1}%)",
                r.key, r.old, r.new, r.change_pct
            );
        }
    }
    s
}

fn diff_scalars(old: &Value, new: &Value, opts: &DiffOptions, out: &mut DiffOutcome) {
    let (Some(Value::Obj(old_s)), Some(Value::Obj(new_s))) =
        (old.get("scalars"), new.get("scalars"))
    else {
        out.skipped.push("scalars (absent)".to_owned());
        return;
    };
    for (k, ov) in old_s {
        let key = format!("scalars.{k}");
        let Some(nv) = new_s.iter().find(|(nk, _)| nk == k).map(|(_, v)| v) else {
            out.skipped.push(format!("{key} (missing in new)"));
            continue;
        };
        compare(&key, numeric(ov), numeric(nv), opts, out);
    }
    for (k, _) in new_s {
        if !old_s.iter().any(|(ok, _)| ok == k) {
            out.skipped.push(format!("scalars.{k} (missing in old)"));
        }
    }
}

fn diff_tables(old: &Value, new: &Value, opts: &DiffOptions, out: &mut DiffOutcome) {
    let (Some(Value::Obj(old_t)), Some(Value::Obj(new_t))) = (old.get("tables"), new.get("tables"))
    else {
        return;
    };
    for (name, ot) in old_t {
        let Some(nt) = new_t.iter().find(|(nk, _)| nk == name).map(|(_, v)| v) else {
            out.skipped.push(format!("tables.{name} (missing in new)"));
            continue;
        };
        let (Some(orows), Some(nrows)) = (
            ot.get("rows").and_then(Value::as_arr),
            nt.get("rows").and_then(Value::as_arr),
        ) else {
            continue;
        };
        if orows.len() != nrows.len() {
            out.skipped.push(format!(
                "tables.{name} (row count {} vs {})",
                orows.len(),
                nrows.len()
            ));
            continue;
        }
        for (i, (orow, nrow)) in orows.iter().zip(nrows.iter()).enumerate() {
            let Value::Obj(ocells) = orow else { continue };
            for (col, ov) in ocells {
                let key = format!("tables.{name}[{i}].{col}");
                let Some(nv) = nrow.get(col) else {
                    out.skipped.push(format!("{key} (missing in new)"));
                    continue;
                };
                compare(&key, numeric(ov), numeric(nv), opts, out);
            }
        }
    }
}

fn compare(
    key: &str,
    old: Option<f64>,
    new: Option<f64>,
    opts: &DiffOptions,
    out: &mut DiffOutcome,
) {
    let (Some(o), Some(n)) = (old, new) else {
        // Non-numeric on either side (labels, modes): not comparable,
        // and not worth a skip line each — only note numeric/text
        // mismatches, where one side changed representation.
        if old.is_some() != new.is_some() {
            out.skipped
                .push(format!("{key} (numeric in one side only)"));
        }
        return;
    };
    out.compared += 1;
    let change_pct = if o == 0.0 {
        if n == 0.0 {
            0.0
        } else if n > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    } else {
        (n - o) / o.abs() * 100.0
    };
    let bad = match opts.direction {
        Direction::Up => change_pct > opts.threshold_pct,
        Direction::Down => change_pct < -opts.threshold_pct,
        Direction::Both => change_pct.abs() > opts.threshold_pct,
    };
    if bad {
        out.regressions.push(Regression {
            key: key.to_owned(),
            old: o,
            new: n,
            change_pct,
        });
    }
}

/// The numeric reading of a report value: ints and floats directly;
/// strings when they parse wholly as a number (table cells keep their
/// printed formatting, e.g. `"1.50"`).
fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::Int(n) => {
            #[allow(clippy::cast_precision_loss)] // report values are small
            Some(*n as f64)
        }
        Value::Float(f) => Some(*f),
        Value::Str(s) => s.trim().parse::<f64>().ok(),
        _ => None,
    }
}

/// Self-comparison of a live [`Report`] — handy as a CI sanity check
/// (`bench_diff X X` must always pass).
#[must_use]
pub fn self_diff(report: &Report, opts: &DiffOptions) -> DiffOutcome {
    let v = report.to_json();
    diff(&v, &v, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(ratio: &str, p99: i64) -> Value {
        clio_obs::json::parse(&format!(
            r#"{{
              "bench": "demo",
              "scalars": {{ "p99_us": {p99}, "label": "x" }},
              "tables": {{
                "rows": {{
                  "header": ["mode", "ratio"],
                  "rows": [
                    {{ "mode": "group", "ratio": "{ratio}" }}
                  ]
                }}
              }},
              "notes": []
            }}"#
        ))
        .expect("test report parses")
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let v = report("1.50", 100);
        let out = diff(&v, &v, &DiffOptions::default());
        assert!(out.regressions.is_empty(), "{out:?}");
        // p99_us scalar + ratio cell; "label" and "mode" are text.
        assert_eq!(out.compared, 2);
    }

    #[test]
    fn upward_latency_past_threshold_regresses() {
        let old = report("1.50", 100);
        let new = report("1.50", 130);
        let out = diff(&old, &new, &DiffOptions::default());
        assert_eq!(out.regressions.len(), 1);
        let r = &out.regressions[0];
        assert_eq!(r.key, "scalars.p99_us");
        assert!((r.change_pct - 30.0).abs() < 1e-9);
        // Within threshold: fine.
        let ok = diff(&old, &report("1.50", 115), &DiffOptions::default());
        assert!(ok.regressions.is_empty());
    }

    #[test]
    fn direction_down_guards_ratios() {
        let old = report("2.00", 100);
        let new = report("1.00", 100);
        let opts = DiffOptions {
            direction: Direction::Down,
            ..DiffOptions::default()
        };
        let out = diff(&old, &new, &opts);
        assert_eq!(out.regressions.len(), 1);
        assert_eq!(out.regressions[0].key, "tables.rows[0].ratio");
        // The same drop is invisible to direction=up.
        let up = diff(&old, &new, &DiffOptions::default());
        assert!(up.regressions.is_empty());
    }

    #[test]
    fn missing_and_mismatched_keys_are_skipped_not_fatal() {
        let old = clio_obs::json::parse(
            r#"{"scalars": {"gone": 1, "stays": 2}, "tables": {}, "notes": []}"#,
        )
        .expect("parse");
        let new = clio_obs::json::parse(
            r#"{"scalars": {"stays": 2, "fresh": 3}, "tables": {}, "notes": []}"#,
        )
        .expect("parse");
        let out = diff(&old, &new, &DiffOptions::default());
        assert_eq!(out.compared, 1);
        assert!(out.skipped.iter().any(|s| s.contains("gone")));
        assert!(out.skipped.iter().any(|s| s.contains("fresh")));
        assert!(out.regressions.is_empty());
    }

    #[test]
    fn zero_baseline_growth_is_infinite_regression() {
        let old = report("1.50", 0);
        let new = report("1.50", 5);
        let out = diff(&old, &new, &DiffOptions::default());
        assert_eq!(out.regressions.len(), 1);
        assert!(out.regressions[0].change_pct.is_infinite());
    }

    #[test]
    fn self_diff_of_a_live_report_is_clean() {
        let mut r = Report::from_args("demo", "t", Vec::new());
        r.scalar("x", 5u64);
        r.table("t", &["a"], &[vec!["1.0".into()]]);
        let out = self_diff(&r, &DiffOptions::default());
        assert!(out.regressions.is_empty());
        assert_eq!(out.compared, 2);
    }
}
