//! Shared infrastructure for the evaluation harness.
//!
//! One binary per table/figure of the paper lives in `src/bin/`; see
//! DESIGN.md's per-experiment index. The pieces here are shared:
//!
//! - [`synth::SyntheticSource`]: a [`clio_entrymap::BlockSource`] that
//!   *generates* block images on demand for a given entry placement, so
//!   Figure 3's 10⁷-block distances can be measured without materializing
//!   gigabytes;
//! - [`table`]: plain-text table printing for the harness output;
//! - [`report`]: the `--json` machine-readable output every binary emits
//!   alongside its text tables;
//! - [`diff`]: regression comparison between two `BENCH_<name>.json`
//!   reports (the `bench_diff` binary).

pub mod diff;
pub mod report;
pub mod synth;
pub mod table;
