//! Machine-readable harness output (`--json`).
//!
//! Every bench binary prints its human-readable tables as before; when
//! invoked with `--json` it *additionally* writes `BENCH_<name>.json` to
//! the current directory so results can be diffed, plotted, or checked in
//! CI without scraping the text tables. The file is a single JSON object:
//!
//! ```json
//! {
//!   "bench": "fig3_locate",
//!   "title": "…",
//!   "scalars": { "fanout": 16, … },
//!   "tables": { "rows": { "header": […], "rows": [{col: cell, …}, …] } },
//!   "notes": ["…"]
//! }
//! ```
//!
//! Table cells stay exactly the formatted strings the text renderer shows,
//! so the JSON is a faithful record of the printed run, not a second
//! computation that could drift.

use clio_obs::json::Value;

/// Collects one binary's results and emits them as `BENCH_<name>.json`
/// when `--json` was passed on the command line.
pub struct Report {
    name: String,
    title: String,
    scalars: Vec<(String, Value)>,
    tables: Vec<(String, Value)>,
    notes: Vec<Value>,
    json: bool,
}

impl Report {
    /// Creates a report for the binary `name`, reading `--json` from the
    /// process arguments.
    #[must_use]
    pub fn new(name: &str, title: &str) -> Report {
        Report::from_args(name, title, std::env::args().skip(1))
    }

    /// As [`Report::new`], but with explicit arguments (for tests).
    pub fn from_args(name: &str, title: &str, args: impl IntoIterator<Item = String>) -> Report {
        let json = args.into_iter().any(|a| a == "--json");
        Report {
            name: name.to_owned(),
            title: title.to_owned(),
            scalars: Vec::new(),
            tables: Vec::new(),
            notes: Vec::new(),
            json,
        }
    }

    /// Whether `--json` was requested.
    #[must_use]
    pub fn json_enabled(&self) -> bool {
        self.json
    }

    /// Records a named scalar result.
    pub fn scalar(&mut self, key: &str, value: impl Into<Value>) {
        self.scalars.push((key.to_owned(), value.into()));
    }

    /// Records a table under `key`: the header verbatim, plus one object
    /// per row mapping each column name to its (formatted) cell.
    pub fn table(&mut self, key: &str, header: &[&str], rows: &[Vec<String>]) {
        let header_v = Value::Arr(header.iter().map(|h| Value::from(*h)).collect());
        let rows_v = Value::Arr(
            rows.iter()
                .map(|row| {
                    Value::Obj(
                        header
                            .iter()
                            .zip(row.iter())
                            .map(|(h, cell)| ((*h).to_owned(), Value::from(cell.clone())))
                            .collect(),
                    )
                })
                .collect(),
        );
        self.tables.push((
            key.to_owned(),
            Value::obj(vec![("header", header_v), ("rows", rows_v)]),
        ));
    }

    /// Records a free-form interpretation note.
    pub fn note(&mut self, text: &str) {
        self.notes.push(Value::from(text));
    }

    /// The report as a JSON value (regardless of the `--json` flag).
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::obj(vec![
            ("bench", Value::from(self.name.clone())),
            ("title", Value::from(self.title.clone())),
            ("scalars", Value::Obj(self.scalars.clone())),
            ("tables", Value::Obj(self.tables.clone())),
            ("notes", Value::Arr(self.notes.clone())),
        ])
    }

    /// Writes `BENCH_<name>.json` to the current directory if `--json` was
    /// requested; a no-op otherwise. Panics on I/O failure — in a harness,
    /// silently losing the requested output is worse than dying.
    pub fn emit(&self) {
        if !self.json {
            return;
        }
        let path = format!("BENCH_{}.json", self.name);
        let mut body = self.to_json().encode_pretty();
        body.push('\n');
        std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
        println!("\n[--json] wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_detection() {
        let on = Report::from_args("x", "t", vec!["--json".to_owned()]);
        assert!(on.json_enabled());
        let off = Report::from_args("x", "t", Vec::new());
        assert!(!off.json_enabled());
    }

    #[test]
    fn json_round_trips_through_the_decoder() {
        let mut r = Report::from_args("demo", "a demo", vec!["--json".to_owned()]);
        r.scalar("fanout", 16u64);
        r.scalar("ratio", 0.5f64);
        r.table(
            "rows",
            &["n", "cost"],
            &[
                vec!["4".into(), "2.00".into()],
                vec!["8".into(), "1.50".into()],
            ],
        );
        r.note("shape holds");
        let v = clio_obs::json::parse(&r.to_json().encode_pretty()).expect("own output parses");
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("demo"));
        assert_eq!(
            v.get("scalars")
                .and_then(|s| s.get("fanout"))
                .and_then(Value::as_i64),
            Some(16)
        );
        let rows = v
            .get("tables")
            .and_then(|t| t.get("rows"))
            .and_then(|t| t.get("rows"))
            .and_then(Value::as_arr)
            .expect("rows array");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("cost").and_then(Value::as_str), Some("1.50"));
    }
}
