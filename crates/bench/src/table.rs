//! Plain-text table rendering for harness output.

/// Renders a table with a header row, aligning columns to their widest
/// cell.
#[must_use]
pub fn render(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, c) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:>width$}", c, width = widths[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &header.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>(),
    );
    let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(rule));
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Formats a microsecond value as milliseconds with two decimals.
#[must_use]
pub fn ms(us: u64) -> String {
    format!("{:.2}", us as f64 / 1000.0)
}

/// Formats a float with two decimals.
#[must_use]
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let t = render(
            &["a", "bbbb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('a') && lines[0].contains("bbbb"));
        assert!(lines[1].starts_with('-'));
        // Right-aligned numbers.
        assert!(lines[2].ends_with('2'));
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(2_460), "2.46");
        assert_eq!(f2(1.005), "1.00");
    }
}
