//! A synthetic, on-demand block source.
//!
//! Generates exactly the block images the real write path would produce
//! for a log where a single client log file (id 8) has entries in a given
//! set of blocks — including all entrymap records at their boundary blocks,
//! computed analytically from the placement. Because images are produced
//! per read, a 10⁷-block "volume" costs no memory, which is what the
//! Figure 3 sweep needs.

use std::collections::BTreeSet;
use std::sync::Arc;

use clio_entrymap::{BlockSource, Geometry, PendingMaps};
use clio_format::{BlockBuilder, EntryForm, EntryHeader, EntrymapRecord, PushOutcome};
use clio_types::{LogFileId, Result, SmallBitmap, Timestamp};

/// The log file id the synthetic log places entries for.
pub const SYNTH_FILE: LogFileId = LogFileId(8);

/// Virtual microseconds between consecutive blocks' first timestamps.
pub const BLOCK_TIME_STEP: u64 = 1_000;

/// A deterministic, memory-free log of `total` blocks with entries of
/// [`SYNTH_FILE`] in the `placed` blocks.
pub struct SyntheticSource {
    geo: Geometry,
    fanout: usize,
    block_size: usize,
    total: u64,
    placed: BTreeSet<u64>,
}

impl SyntheticSource {
    /// Creates a source; `placed` lists the blocks containing file entries.
    #[must_use]
    pub fn new(
        fanout: usize,
        block_size: usize,
        total: u64,
        placed: BTreeSet<u64>,
    ) -> SyntheticSource {
        SyntheticSource {
            geo: Geometry::new(fanout),
            fanout,
            block_size,
            total,
            placed,
        }
    }

    /// Whether any placed block falls in `[start, stop)`.
    fn any_in(&self, start: u64, stop: u64) -> bool {
        self.placed.range(start..stop).next().is_some()
    }

    /// The bitmap of a level-`level` map covering `group`.
    fn bitmap_for(&self, level: u8, group: u64) -> SmallBitmap {
        let mut bm = SmallBitmap::new(self.fanout);
        let sub = self.geo.period(level - 1);
        for j in 0..self.fanout as u64 {
            let start = (group * self.fanout as u64 + j) * sub;
            if self.any_in(start, start.saturating_add(sub)) {
                bm.set(j as usize);
            }
        }
        bm
    }

    /// The entrymap records due at the start of block `db` (what the real
    /// writer's `begin_block` would emit).
    fn records_at(&self, db: u64) -> Vec<EntrymapRecord> {
        let top = self.geo.boundary_level(db);
        (1..=top)
            .map(|level| {
                let group = db / self.geo.period(level) - 1;
                let bm = self.bitmap_for(level, group);
                let maps = if bm.any() {
                    vec![(SYNTH_FILE, bm)]
                } else {
                    vec![]
                };
                EntrymapRecord::new(level, group, self.fanout as u16, maps)
            })
            .collect()
    }

    /// The pending (unmapped-tail) state matching this log — what a live
    /// writer would hold, computed analytically.
    #[must_use]
    pub fn pending(&self) -> PendingMaps {
        // Reuse the recovery path: it is property-tested to equal the live
        // writer's state, and on this source it reads only O(N·log_N b)
        // synthetic blocks.
        let (pending, _) =
            clio_entrymap::rebuild_pending(self).expect("synthetic source is infallible");
        pending
    }
}

impl BlockSource for SyntheticSource {
    fn fanout(&self) -> usize {
        self.fanout
    }

    fn data_end(&self) -> u64 {
        self.total
    }

    fn read(&self, db: u64) -> Result<Arc<Vec<u8>>> {
        let mut b = BlockBuilder::new(self.block_size, Timestamp(db * BLOCK_TIME_STEP));
        for rec in self.records_at(db) {
            let header = EntryHeader::new(LogFileId::ENTRYMAP, EntryForm::Minimal, None, None);
            match b.push(&header, &rec.encode()) {
                PushOutcome::Written(_) => {}
                PushOutcome::NoSpace { .. } => {
                    unreachable!("synthetic maps always fit: one file, small bitmaps")
                }
            }
            b.flags_mut().has_entrymap = true;
        }
        if self.placed.contains(&db) {
            let header = EntryHeader::new(
                SYNTH_FILE,
                EntryForm::Timestamped,
                Some(Timestamp(db * BLOCK_TIME_STEP + 1)),
                None,
            );
            let _ = b.push(&header, b"synthetic-entry");
        }
        Ok(Arc::new(b.finish()))
    }
}

#[cfg(test)]
mod tests {
    use clio_entrymap::{naive, Locator};

    use super::*;

    #[test]
    fn matches_locator_semantics() {
        let placed: BTreeSet<u64> = [3u64, 77, 200, 4095].into_iter().collect();
        let src = SyntheticSource::new(16, 512, 5000, placed.clone());
        let pending = src.pending();
        let mut loc = Locator::new(&src, Some(&pending));
        assert_eq!(loc.locate_before(&[SYNTH_FILE], 4999).unwrap(), Some(4095));
        assert_eq!(loc.locate_before(&[SYNTH_FILE], 4094).unwrap(), Some(200));
        assert_eq!(loc.locate_before(&[SYNTH_FILE], 2).unwrap(), None);
        let mut loc = Locator::new(&src, Some(&pending));
        assert_eq!(
            loc.locate_at_or_after(&[SYNTH_FILE], 78).unwrap(),
            Some(200)
        );
        // Agrees with the naive oracle on a sample.
        for from in [10u64, 100, 1000, 4999] {
            let (want, _) = naive::locate_before(&src, &[SYNTH_FILE], from).unwrap();
            let mut loc = Locator::new(&src, Some(&pending));
            assert_eq!(loc.locate_before(&[SYNTH_FILE], from).unwrap(), want);
        }
    }

    #[test]
    fn distant_lookup_is_logarithmic() {
        // A single entry 1,000,000 blocks back: the search must stay in the
        // tens of block reads.
        let placed: BTreeSet<u64> = [5u64].into_iter().collect();
        let src = SyntheticSource::new(16, 512, 1_000_000, placed);
        let pending = src.pending();
        let mut loc = Locator::new(&src, Some(&pending));
        assert_eq!(loc.locate_before(&[SYNTH_FILE], 999_999).unwrap(), Some(5));
        assert!(
            loc.stats.blocks_read <= 17,
            "read {} blocks",
            loc.stats.blocks_read
        );
    }
}
