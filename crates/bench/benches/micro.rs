//! Microbenchmarks for the hot paths: block building/scanning, entrymap
//! emission and search, the append path, and the block cache.
//!
//! Runs on `clio_testkit::bench` (`harness = false`); tune with
//! `CLIO_BENCH_SAMPLES`, `CLIO_BENCH_SAMPLE_MS`, `CLIO_BENCH_WARMUP_MS`.

use std::collections::BTreeSet;
use std::sync::Arc;

use clio_bench::synth::{SyntheticSource, SYNTH_FILE};
use clio_cache::{BlockCache, CacheKey};
use clio_core::service::{AppendOpts, LogService};
use clio_core::ServiceConfig;
use clio_entrymap::{EntrymapWriter, Geometry, Locator};
use clio_format::{BlockBuilder, BlockView, EntryForm, EntryHeader};
use clio_testkit::bench::{black_box, Bench};
use clio_types::crc::crc32;
use clio_types::{BlockNo, LogFileId, ManualClock, Timestamp, VolumeSeqId};
use clio_volume::MemDevicePool;

fn bench_block_format(c: &mut Bench) {
    let header = EntryHeader::new(
        LogFileId(8),
        EntryForm::Timestamped,
        Some(Timestamp(7)),
        None,
    );
    let payload = [0x5Au8; 48];
    c.bench("block/pack_1k", || {
        let mut builder = BlockBuilder::new(1024, Timestamp(1));
        while let clio_format::PushOutcome::Written(_) =
            builder.push(black_box(&header), black_box(&payload))
        {}
        black_box(builder.finish())
    });
    let img = {
        let mut builder = BlockBuilder::new(1024, Timestamp(1));
        while let clio_format::PushOutcome::Written(_) = builder.push(&header, &payload) {}
        builder.finish()
    };
    c.bench("block/scan_1k", || {
        let view = BlockView::parse(black_box(&img)).expect("valid block");
        let mut n = 0;
        for e in view.entries() {
            let e = e.expect("valid entry");
            n += e.payload.len();
        }
        black_box(n)
    });
    c.bench("crc32/1k", || black_box(crc32(black_box(&img))));
}

fn bench_entrymap(c: &mut Bench) {
    c.bench("entrymap/writer_1k_blocks", || {
        let mut w = EntrymapWriter::new(Geometry::new(16));
        for db in 0..1000u64 {
            black_box(w.begin_block(db));
            w.note_block(db, [LogFileId(8), LogFileId(9)]);
        }
        black_box(w.pending().level_count())
    });
    let placed: BTreeSet<u64> = [100u64].into_iter().collect();
    let src = SyntheticSource::new(16, 1024, 1_000_000, placed);
    let pending = src.pending();
    c.bench("entrymap/locate_1M_distance", || {
        let mut loc = Locator::new(&src, Some(&pending));
        black_box(
            loc.locate_before(black_box(&[SYNTH_FILE]), 999_999)
                .expect("synthetic reads cannot fail"),
        )
    });
}

fn bench_service(c: &mut Bench) {
    let mk = || {
        let svc = LogService::create(
            VolumeSeqId(1),
            Arc::new(MemDevicePool::new(1024, 1 << 22)),
            ServiceConfig::default().with_shards(1),
            Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
        )
        .expect("fresh service");
        svc.create_log("/bench").expect("create log");
        svc
    };
    let payload = [0x42u8; 50];
    let svc = mk();
    c.bench("service/append_buffered_50B", || {
        svc.append_path("/bench", black_box(&payload), AppendOpts::standard())
            .expect("append")
    });
    let svc = mk();
    c.bench("service/append_forced_50B", || {
        svc.append_path("/bench", black_box(&payload), AppendOpts::forced())
            .expect("append")
    });
    // Read path over a prebuilt log.
    let svc = mk();
    for i in 0..5_000u32 {
        svc.append_path("/bench", &i.to_le_bytes(), AppendOpts::standard())
            .expect("append");
    }
    svc.flush().expect("flush");
    c.bench("service/cursor_scan_5k", || {
        let mut cur = svc.cursor("/bench").expect("cursor");
        let mut n = 0u64;
        while let Some(e) = cur.next().expect("next") {
            n += e.data.len() as u64;
        }
        black_box(n)
    });
}

fn bench_cache(c: &mut Bench) {
    let cache = BlockCache::new(1024);
    let data = Arc::new(vec![0u8; 1024]);
    for i in 0..1024u64 {
        cache.put(CacheKey::new(0, BlockNo(i)), data.clone());
    }
    let mut i = 0u64;
    c.bench("cache/hit", || {
        i = (i + 1) % 1024;
        black_box(cache.get(CacheKey::new(0, BlockNo(i))))
    });
    let mut j = 10_000u64;
    c.bench("cache/put_evict", || {
        j += 1;
        cache.put(CacheKey::new(0, BlockNo(j)), data.clone());
    });
}

fn main() {
    let mut c = Bench::from_env();
    bench_block_format(&mut c);
    bench_entrymap(&mut c);
    bench_service(&mut c);
    bench_cache(&mut c);
}
