//! Property tests for the log₂-bucketed histogram: quantile bounds,
//! merge-equals-union, and concurrent-recorder safety. Runs on
//! `clio_testkit::prop`.

use std::sync::Arc;

use clio_obs::hist::bucket_upper_bound;
use clio_obs::Histogram;
use clio_testkit::prop::{check, u64s, vec_of};

const CASES: u32 = 128;

/// Values stay well below `u64::MAX / len` so `sum` never saturates and
/// can be compared exactly.
fn values(len: std::ops::Range<usize>) -> clio_testkit::prop::Gen<Vec<u64>> {
    vec_of(&u64s(0..1 << 40), len)
}

#[test]
fn quantiles_bound_the_true_order_statistics() {
    check(
        "quantiles_bound_the_true_order_statistics",
        CASES,
        &values(1..200),
        |vals| {
            let h = Histogram::new();
            for &v in vals {
                h.record(v);
            }
            let s = h.snapshot();
            let mut sorted = vals.clone();
            sorted.sort_unstable();
            assert_eq!(s.count, vals.len() as u64);
            assert_eq!(s.sum, vals.iter().sum::<u64>());
            assert_eq!(s.min, sorted[0]);
            assert_eq!(s.max, *sorted.last().expect("non-empty"));
            for q in [0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * vals.len() as f64).ceil() as usize).clamp(1, vals.len());
                let true_q = sorted[rank - 1];
                let est = s.quantile(q);
                // The estimate is the bucket upper bound (clamped to max):
                // never below the true order statistic, never above max.
                assert!(
                    est >= true_q && est <= s.max,
                    "q={q}: true {true_q} <= est {est} <= max {} violated",
                    s.max
                );
            }
        },
    );
}

#[test]
fn bucket_upper_bounds_are_monotone_and_cover() {
    check(
        "bucket_upper_bounds_are_monotone_and_cover",
        CASES,
        &u64s(0..u64::MAX),
        |&v| {
            let h = Histogram::new();
            h.record(v);
            let s = h.snapshot();
            // The single recorded value lands in exactly one bucket whose
            // upper bound covers it (p100 == max == v after clamping).
            assert_eq!(s.quantile(1.0), v);
            // And the static bucket bounds are monotone.
            for i in 1..clio_obs::hist::BUCKETS {
                assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1));
            }
        },
    );
}

#[test]
fn merge_equals_recording_the_union() {
    check(
        "merge_equals_recording_the_union",
        CASES,
        &clio_testkit::prop::pair(&values(0..100), &values(0..100)),
        |(a, b)| {
            let ha = Histogram::new();
            let hb = Histogram::new();
            let hu = Histogram::new();
            for &v in a {
                ha.record(v);
                hu.record(v);
            }
            for &v in b {
                hb.record(v);
                hu.record(v);
            }
            let mut merged = ha.snapshot();
            merged.merge(&hb.snapshot());
            assert_eq!(merged, hu.snapshot(), "merge(a,b) != record(a ∪ b)");
        },
    );
}

#[test]
fn concurrent_recorders_lose_nothing() {
    check(
        "concurrent_recorders_lose_nothing",
        16, // each case spawns threads; keep the count modest
        &values(4..400),
        |vals| {
            let h = Arc::new(Histogram::new());
            let threads = 4;
            let chunk = vals.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for part in vals.chunks(chunk) {
                    let h = h.clone();
                    scope.spawn(move || {
                        for &v in part {
                            h.record(v);
                        }
                    });
                }
            });
            let s = h.snapshot();
            assert_eq!(s.count, vals.len() as u64);
            assert_eq!(s.sum, vals.iter().sum::<u64>());
            assert_eq!(s.min, *vals.iter().min().expect("non-empty"));
            assert_eq!(s.max, *vals.iter().max().expect("non-empty"));
        },
    );
}
