//! TraceRing integration tests: concurrent record/snapshot safety,
//! wraparound behaviour, and the golden `GET /trace` JSON shape.

use std::sync::Arc;

use clio_obs::{AttrValue, Span, TraceRing};

/// Builds a deterministic completed span (the `record_span` path used by
/// golden tests — no clocks involved).
fn fixed_span(
    trace: u64,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    start_us: u64,
    dur_us: u64,
) -> Span {
    Span {
        seq: 0,
        trace,
        id,
        parent,
        name,
        target: None,
        start_us,
        dur_us,
        outcome: "ok",
        attrs: Vec::new(),
    }
}

/// Writers hammer the ring from several threads while a reader snapshots
/// and renders concurrently: no lost records, no panics, and every
/// surviving span is intact.
#[test]
fn concurrent_recording_and_snapshotting_is_safe() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 500;
    let ring = Arc::new(TraceRing::new(64));
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let ring = ring.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_WRITER {
                // Alternate the guard path and the prebuilt path.
                if i % 2 == 0 {
                    let mut g = ring.span("append");
                    g.attr("bytes", i as u64);
                    let _child = ring.span("stage");
                } else {
                    ring.record_span(fixed_span(
                        (w * PER_WRITER + i) as u64,
                        (w * PER_WRITER + i) as u64,
                        None,
                        "read",
                        1,
                        1,
                    ));
                }
            }
        }));
    }
    let reader = {
        let ring = ring.clone();
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            while ring.total_recorded() < (WRITERS * PER_WRITER) as u64 / 2 {
                let snap = ring.snapshot();
                assert!(snap.len() <= ring.capacity());
                for s in &snap {
                    assert!(matches!(s.name, "append" | "stage" | "read"));
                }
                let _ = ring.dump();
                let _ = ring.trace_json().encode();
                snapshots += 1;
            }
            snapshots
        })
    };
    for h in handles {
        h.join().expect("writer");
    }
    reader.join().expect("reader");
    // Guard path records two spans per even i, prebuilt one per odd i.
    let expected = (WRITERS * PER_WRITER / 2 * 2 + WRITERS * PER_WRITER / 2) as u64;
    assert_eq!(ring.total_recorded(), expected);
    assert_eq!(ring.len(), 64);
    // Seq numbers in a snapshot are strictly increasing (oldest first).
    let snap = ring.snapshot();
    for pair in snap.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
}

/// A trace larger than the whole ring: the oldest phases fall off, the
/// survivors still group under the trace, and children whose parents were
/// evicted surface as roots instead of disappearing.
#[test]
fn wraparound_keeps_the_newest_spans_and_tolerates_evicted_parents() {
    let ring = TraceRing::new(4);
    {
        let _root = ring.span("append");
        // Each phase records on scope exit; 6 finished phases + the root
        // overflow capacity 4 well before the root itself records.
        for _ in 0..6 {
            ring.span("stage").finish();
        }
    }
    assert_eq!(ring.len(), 4);
    assert_eq!(ring.total_recorded(), 7);
    let trees = ring.traces();
    assert_eq!(trees.len(), 1, "all survivors share the root's trace");
    // The root recorded last, so it survives; the 3 newest phases attach
    // to it (their parent survived), older phases were overwritten.
    let root = &trees[0].roots;
    let span_count: usize = root.iter().map(|n| 1 + n.children.len()).sum();
    assert_eq!(span_count, 4);
    assert!(root.iter().any(|n| n.span.name == "append"));
    let dump = ring.dump();
    assert!(dump.contains("4 span(s) held, 7 recorded, capacity 4"));
}

/// Golden shape for the `/trace` body: deterministic spans in, exact
/// JSON document out. Guards the wire contract scrapers parse.
#[test]
fn trace_json_golden_shape() {
    let ring = TraceRing::new(8);
    let mut root = fixed_span(1, 1, None, "append", 100, 40);
    root.target = Some(3);
    root.attrs.push(("bytes", AttrValue::U64(64)));
    ring.record_span(root);
    let mut gate = fixed_span(1, 2, Some(1), "commit_gate", 110, 25);
    gate.attrs.push(("role", AttrValue::Str("leader")));
    ring.record_span(gate);
    ring.record_span(fixed_span(1, 3, Some(2), "device_write", 120, 10));
    ring.record_span(fixed_span(7, 7, None, "read", 200, 5));

    let got = ring.trace_json().encode();
    let want = concat!(
        "{\"traces\":[",
        "{\"trace\":1,\"spans\":[",
        "{\"id\":1,\"parent\":null,\"name\":\"append\",\"target\":3,",
        "\"start_us\":100,\"dur_us\":40,\"outcome\":\"ok\",",
        "\"attrs\":{\"bytes\":64},",
        "\"children\":[",
        "{\"id\":2,\"parent\":1,\"name\":\"commit_gate\",\"target\":null,",
        "\"start_us\":110,\"dur_us\":25,\"outcome\":\"ok\",",
        "\"attrs\":{\"role\":\"leader\"},",
        "\"children\":[",
        "{\"id\":3,\"parent\":2,\"name\":\"device_write\",\"target\":null,",
        "\"start_us\":120,\"dur_us\":10,\"outcome\":\"ok\"}",
        "]}]}]},",
        "{\"trace\":7,\"spans\":[",
        "{\"id\":7,\"parent\":null,\"name\":\"read\",\"target\":null,",
        "\"start_us\":200,\"dur_us\":5,\"outcome\":\"ok\"}",
        "]}]}",
    );
    assert_eq!(got, want);

    // The document also round-trips through the crate's own parser.
    let parsed = clio_obs::json::parse(&got).expect("valid JSON");
    let traces = parsed.get("traces").and_then(|v| v.as_arr()).expect("arr");
    assert_eq!(traces.len(), 2);
}

/// Spans opened on different threads never cross-link: the thread-local
/// parent stack keeps each thread's operations in separate traces.
#[test]
fn parentage_is_thread_local() {
    let ring = Arc::new(TraceRing::new(32));
    let barrier = Arc::new(std::sync::Barrier::new(2));
    let mut handles = Vec::new();
    for _ in 0..2 {
        let ring = ring.clone();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            let _root = ring.span("append");
            barrier.wait(); // both roots open at once
            ring.span("stage").finish();
        }));
    }
    for h in handles {
        h.join().expect("thread");
    }
    let trees = ring.traces();
    assert_eq!(trees.len(), 2, "one trace per thread");
    for t in &trees {
        assert_eq!(t.roots.len(), 1);
        assert_eq!(t.roots[0].span.name, "append");
        assert_eq!(t.roots[0].children.len(), 1);
        assert_eq!(t.roots[0].children[0].span.name, "stage");
    }
}
