//! Exposition: rendering a [`MetricsRegistry`] as Prometheus-style text
//! or as a JSON document.
//!
//! The text format follows the Prometheus conventions closely enough to be
//! scraped (one `# TYPE` line per metric, `_bucket{le=...}` /`_sum`/
//! `_count` series for histograms) while staying dependency-free. The JSON
//! form is the same sample set as a single object keyed by metric name —
//! histograms become objects with `count`/`sum`/`min`/`max`/quantiles.

use std::fmt::Write as _;

use crate::hist::{bucket_upper_bound, HistSnapshot, BUCKETS};
use crate::json::Value;
use crate::registry::{label_suffix, MetricValue, MetricsRegistry};

/// Renders the registry in a Prometheus-style text format. Labeled series
/// of one family share a single `# TYPE` line (gather order keeps them
/// adjacent); histogram labels merge with the `le` bucket label.
#[must_use]
pub fn render_prometheus(reg: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut last_family: Option<(String, &'static str)> = None;
    for sample in reg.gather() {
        let kind = match &sample.value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        if last_family.as_ref() != Some(&(sample.name.clone(), kind)) {
            let _ = writeln!(out, "# TYPE {} {}", sample.name, kind);
            last_family = Some((sample.name.clone(), kind));
        }
        let labels = label_suffix(&sample.labels);
        match &sample.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{}{} {}", sample.name, labels, v);
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{}{} {}", sample.name, labels, v);
            }
            MetricValue::Histogram(h) => {
                // `le` joins the series' own labels inside one brace set.
                let open = if sample.labels.is_empty() {
                    "{".to_owned()
                } else {
                    let mut o = labels.clone();
                    o.pop();
                    o.push(',');
                    o
                };
                let mut cumulative = 0u64;
                for i in 0..BUCKETS {
                    if h.buckets[i] == 0 {
                        continue;
                    }
                    cumulative += h.buckets[i];
                    let _ = writeln!(
                        out,
                        "{}_bucket{}le=\"{}\"}} {}",
                        sample.name,
                        open,
                        bucket_upper_bound(i),
                        cumulative
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{}le=\"+Inf\"}} {}",
                    sample.name, open, h.count
                );
                let _ = writeln!(out, "{}_sum{} {}", sample.name, labels, h.sum);
                let _ = writeln!(out, "{}_count{} {}", sample.name, labels, h.count);
            }
        }
    }
    out
}

fn hist_to_json(h: &HistSnapshot) -> Value {
    Value::obj(vec![
        ("count", Value::Int(h.count as i64)),
        ("sum", Value::Int(h.sum as i64)),
        (
            "min",
            if h.is_empty() {
                Value::Null
            } else {
                Value::Int(h.min as i64)
            },
        ),
        ("max", Value::Int(h.max as i64)),
        ("p50", Value::Int(h.p50() as i64)),
        ("p90", Value::Int(h.p90() as i64)),
        ("p99", Value::Int(h.p99() as i64)),
        ("mean", Value::Float(h.mean())),
    ])
}

/// Renders the registry as a JSON [`Value`]: one object keyed by series
/// identity (`name` or `name{k="v"}` for labeled series), with
/// counters/gauges as integers and histograms as summary objects.
#[must_use]
pub fn to_json(reg: &MetricsRegistry) -> Value {
    Value::Obj(
        reg.gather()
            .into_iter()
            .map(|sample| {
                let v = match &sample.value {
                    MetricValue::Counter(v) => Value::Int(*v as i64),
                    MetricValue::Gauge(v) => Value::Int(*v),
                    MetricValue::Histogram(h) => hist_to_json(h),
                };
                (sample.identity(), v)
            })
            .collect(),
    )
}

/// Renders the registry as a pretty-printed JSON string.
#[must_use]
pub fn render_json(reg: &MetricsRegistry) -> String {
    to_json(reg).encode_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn demo_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::new();
        reg.counter("clio_demo_reads_total").add(12);
        reg.gauge("clio_demo_open").set(2);
        let h = reg.histogram("clio_demo_latency_ns");
        for v in [100u64, 200, 400, 100_000] {
            h.record(v);
        }
        reg
    }

    #[test]
    fn prometheus_text_has_types_and_series() {
        let text = render_prometheus(&demo_registry());
        assert!(text.contains("# TYPE clio_demo_reads_total counter"));
        assert!(text.contains("clio_demo_reads_total 12"));
        assert!(text.contains("# TYPE clio_demo_open gauge"));
        assert!(text.contains("# TYPE clio_demo_latency_ns histogram"));
        assert!(text.contains("clio_demo_latency_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("clio_demo_latency_ns_count 4"));
        assert!(text.contains("clio_demo_latency_ns_sum 100700"));
        // Bucket series are cumulative.
        assert!(text.contains("_bucket{le=\"255\"} 2"));
    }

    #[test]
    fn json_round_trips_and_has_quantiles() {
        let text = render_json(&demo_registry());
        let v = json::parse(&text).unwrap();
        assert_eq!(
            v.get("clio_demo_reads_total").and_then(Value::as_i64),
            Some(12)
        );
        let h = v.get("clio_demo_latency_ns").unwrap();
        assert_eq!(h.get("count").and_then(Value::as_i64), Some(4));
        assert_eq!(h.get("max").and_then(Value::as_i64), Some(100_000));
        let p50 = h.get("p50").and_then(Value::as_i64).unwrap();
        assert!((200..=400).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn empty_registry_renders_empty() {
        let reg = MetricsRegistry::new();
        assert_eq!(render_prometheus(&reg), "");
        assert_eq!(to_json(&reg), Value::Obj(vec![]));
    }

    #[test]
    fn labeled_series_share_one_type_line() {
        let reg = MetricsRegistry::new();
        reg.counter_with("clio_log_appends_total", &[("log", "1")])
            .add(3);
        reg.counter_with("clio_log_appends_total", &[("log", "2")])
            .add(4);
        let h = reg.histogram_with("clio_log_append_ns", &[("log", "1")]);
        h.record(100);
        h.record(300);
        let text = render_prometheus(&reg);
        assert_eq!(
            text.matches("# TYPE clio_log_appends_total counter")
                .count(),
            1,
            "one TYPE line for the whole family:\n{text}"
        );
        assert!(text.contains("clio_log_appends_total{log=\"1\"} 3"));
        assert!(text.contains("clio_log_appends_total{log=\"2\"} 4"));
        // Histogram labels merge with `le` in one brace set.
        assert!(text.contains("clio_log_append_ns_bucket{log=\"1\",le=\"+Inf\"} 2"));
        assert!(text.contains("clio_log_append_ns_sum{log=\"1\"} 400"));
        assert!(text.contains("clio_log_append_ns_count{log=\"1\"} 2"));

        let v = json::parse(&render_json(&reg)).unwrap();
        assert_eq!(
            v.get("clio_log_appends_total{log=\"2\"}")
                .and_then(Value::as_i64),
            Some(4)
        );
        assert_eq!(
            v.get("clio_log_append_ns{log=\"1\"}")
                .and_then(|h| h.get("count"))
                .and_then(Value::as_i64),
            Some(2)
        );
    }
}
