//! The workspace's single source of host wall-clock readings.
//!
//! Determinism policy (see DESIGN.md "Static analysis & lockdep"): test
//! schedules and recovery results must be replayable, so product code
//! never reads the host clock directly — the `no-wallclock` rule in
//! `clio-lint` rejects `Instant::now()`/`SystemTime::now()` outside the
//! approved timing modules. Latency measurement is observability, so it
//! funnels through here: a span obtained from [`now`] is self-describing
//! in profiles and grep-able in one place. Semantic time (timestamps
//! stored in log entries) is a different thing entirely and comes from
//! `clio_types::time::Clock`, which tests replace with a logical clock.
//!
//! Span timestamps additionally support **virtual time**: the
//! whole-system simulator runs every client on one thread against a
//! seeded virtual clock, and span trees recorded during a simulated run
//! must be a pure function of the seed. [`install_virtual_us`] overrides
//! [`now_us`] for the current thread (and only that thread) until the
//! returned guard drops, so a simulation's spans carry virtual
//! microseconds while concurrent real-time tests are unaffected.

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

pub use std::time::Instant;

/// An opaque moment, for measuring elapsed time via `Instant::elapsed`.
#[must_use]
pub fn now() -> Instant {
    Instant::now()
}

/// The process epoch all [`now_us`] readings are relative to (first use
/// wins; only differences are meaningful).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    /// Stack of thread-local virtual-time sources; the innermost override
    /// wins. A stack (rather than a slot) lets nested scopes restore the
    /// outer source on drop.
    static VIRTUAL_US: RefCell<Vec<Arc<dyn Fn() -> u64>>> = const { RefCell::new(Vec::new()) };
}

/// Microseconds for span timestamps: virtual when the current thread has
/// an installed source (see [`install_virtual_us`]), otherwise host
/// microseconds since the process epoch.
#[must_use]
pub fn now_us() -> u64 {
    let v = VIRTUAL_US.with(|s| s.borrow().last().cloned());
    match v {
        Some(f) => f(),
        None => u64::try_from(epoch().elapsed().as_micros()).unwrap_or(u64::MAX),
    }
}

/// Uninstalls its virtual-time source when dropped.
pub struct VirtualClockGuard {
    _private: (),
}

impl Drop for VirtualClockGuard {
    fn drop(&mut self) {
        VIRTUAL_US.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Makes [`now_us`] on the *current thread* read `source` until the
/// returned guard drops. Used by the deterministic simulator so spans
/// recorded during a simulated run carry virtual microseconds.
#[must_use]
pub fn install_virtual_us(source: Arc<dyn Fn() -> u64>) -> VirtualClockGuard {
    VIRTUAL_US.with(|s| s.borrow_mut().push(source));
    VirtualClockGuard { _private: () }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn host_time_is_monotonic_nondecreasing() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }

    #[test]
    fn virtual_override_is_thread_local_and_nests() {
        let tick = Arc::new(AtomicU64::new(500));
        let t2 = tick.clone();
        let g = install_virtual_us(Arc::new(move || t2.load(Ordering::Relaxed)));
        assert_eq!(now_us(), 500);
        tick.store(900, Ordering::Relaxed);
        assert_eq!(now_us(), 900);
        {
            let _inner = install_virtual_us(Arc::new(|| 7));
            assert_eq!(now_us(), 7);
        }
        assert_eq!(now_us(), 900, "outer source restored after inner drop");
        // Another thread's override is independent of this thread's.
        std::thread::spawn(|| {
            let _g = install_virtual_us(Arc::new(|| 123));
            assert_eq!(now_us(), 123);
        })
        .join()
        .expect("probe thread");
        assert_eq!(now_us(), 900, "peer thread override must not leak here");
        drop(g);
    }
}
