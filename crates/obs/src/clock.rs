//! The workspace's single source of host wall-clock readings.
//!
//! Determinism policy (see DESIGN.md "Static analysis & lockdep"): test
//! schedules and recovery results must be replayable, so product code
//! never reads the host clock directly — the `no-wallclock` rule in
//! `clio-lint` rejects `Instant::now()`/`SystemTime::now()` outside the
//! approved timing modules. Latency measurement is observability, so it
//! funnels through here: a span obtained from [`now`] is self-describing
//! in profiles and grep-able in one place. Semantic time (timestamps
//! stored in log entries) is a different thing entirely and comes from
//! `clio_types::time::Clock`, which tests replace with a logical clock.

pub use std::time::Instant;

/// An opaque moment, for measuring elapsed time via `Instant::elapsed`.
#[must_use]
pub fn now() -> Instant {
    Instant::now()
}
