//! Validates that each file argument parses as JSON (used by
//! `scripts/ci.sh` to check emitted `BENCH_*.json` files).
//!
//! Exits 0 when every file parses; prints the parse error and exits 1
//! otherwise.

use std::process::ExitCode;

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: clio_json_check <file.json>...");
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &paths {
        match std::fs::read_to_string(path) {
            Ok(text) => match clio_obs::json::parse(&text) {
                Ok(v) => {
                    let keys = match &v {
                        clio_obs::json::Value::Obj(pairs) => pairs.len(),
                        clio_obs::json::Value::Arr(items) => items.len(),
                        _ => 1,
                    };
                    println!("{path}: ok ({keys} top-level entries)");
                }
                Err(e) => {
                    eprintln!("{path}: {e}");
                    ok = false;
                }
            },
            Err(e) => {
                eprintln!("{path}: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
