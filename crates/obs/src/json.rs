//! A minimal in-tree JSON encoder/decoder.
//!
//! The workspace is std-only by policy, so the bench `--json` output and
//! its CI validation cannot use serde. This module implements just enough
//! of RFC 8259 for that job: the full value model, string escaping
//! (including `\uXXXX` decode), and a recursive-descent parser with
//! useful error positions. Objects preserve insertion order (they are a
//! `Vec` of pairs, not a map) so emitted files diff cleanly.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// A float (non-finite values encode as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Builds a [`Value::Int`] from an unsigned count, falling back to
    /// [`Value::Float`] for the (astronomical) counts beyond `i64::MAX`.
    #[must_use]
    pub fn uint(n: u64) -> Value {
        i64::try_from(n).map_or(Value::Float(n as f64), Value::Int)
    }

    /// Looks up a key in an object; `None` for non-objects or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer value, if this is an `Int`.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value of an `Int` or `Float`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(n) => Some(*n as f64),
            Value::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a `Str`.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an `Arr`.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Encodes compactly (no whitespace).
    #[must_use]
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Encodes with two-space indentation.
    #[must_use]
    pub fn encode_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(x) => {
                if x.is_finite() {
                    let start = out.len();
                    let _ = write!(out, "{x}");
                    // `{}` on an integral f64 prints no point; keep it a float.
                    if !out[start..].contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                if !items.is_empty() {
                    newline(out, indent, depth);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                if !pairs.is_empty() {
                    newline(out, indent, depth);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Value {
        Value::Int(n)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Value {
        Value::uint(n)
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Value {
        Value::Int(i64::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Value {
        Value::uint(n as u64)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Float(x)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
/// Returns a [`ParseError`] describing the first offending byte.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode \uD8xx\uDCxx into one char.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else {
            // Integers outside i64 fall back to f64, like most decoders.
            text.parse::<i64>().map(Value::Int).or_else(|_| {
                text.parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| self.err("invalid number"))
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = Value::obj(vec![
            ("name", Value::Str("fig2 \"tree\"\n".to_owned())),
            ("count", Value::Int(-42)),
            ("ratio", Value::Float(0.5)),
            ("ok", Value::Bool(true)),
            ("none", Value::Null),
            (
                "rows",
                Value::Arr(vec![Value::Int(1), Value::Int(2), Value::Int(3)]),
            ),
        ]);
        let text = v.encode();
        assert_eq!(parse(&text).unwrap(), v);
        let pretty = v.encode_pretty();
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn integral_floats_keep_a_point() {
        let text = Value::Float(3.0).encode();
        assert_eq!(text, "3.0");
        assert_eq!(parse(&text).unwrap(), Value::Float(3.0));
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\tbé😀""#).unwrap();
        assert_eq!(v, Value::Str("a\tbé😀".to_owned()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nul").is_err());
        let e = parse("[1, @]").unwrap_err();
        assert_eq!(e.at, 4);
    }

    #[test]
    fn big_integers_fall_back_to_float() {
        let v = parse("18446744073709551615").unwrap();
        assert!(matches!(v, Value::Float(_)));
        assert_eq!(parse("9223372036854775807").unwrap(), Value::Int(i64::MAX));
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": 1, "b": [2.5], "c": "x"}"#).unwrap();
        assert_eq!(v.get("a").and_then(Value::as_i64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.get("b").unwrap().as_arr().unwrap()[0].as_f64(), Some(2.5));
    }
}
