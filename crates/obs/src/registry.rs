//! The metrics registry: named counters, gauges, histograms, and
//! closure-based collectors.
//!
//! Components either ask the registry for a handle (`counter`, `gauge`,
//! `histogram` — get-or-create, shared via `Arc`) and update it on their
//! hot path, or keep their own atomics and register a collector closure
//! that is polled at exposition time (`register_counter_fn`,
//! `register_gauge_fn`). Both styles end up in the same sorted sample set,
//! so the rendered output is one coherent view of the whole service.

use std::collections::BTreeMap;
use std::sync::Arc;

use clio_testkit::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use clio_testkit::sync::Mutex;

use crate::hist::{HistSnapshot, Histogram};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An atomic gauge (a value that can go up and down).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
}

/// A registered metric plus the label set it was created with. The map
/// key is the full series identity (`name{k="v",...}`), so differently
/// labeled series of one family are distinct entries that sort together.
struct Entry {
    labels: Vec<(String, String)>,
    metric: Metric,
}

/// Renders `{k="v",...}` with Prometheus escaping, or `""` when empty.
#[must_use]
pub fn label_suffix(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

fn identity(name: &str, labels: &[(String, String)]) -> String {
    let mut id = name.to_owned();
    id.push_str(&label_suffix(labels));
    id
}

/// One gathered metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(i64),
    /// A histogram snapshot (boxed: a snapshot is ~500 bytes of buckets,
    /// which would otherwise bloat every counter sample to match).
    Histogram(Box<HistSnapshot>),
}

/// One named sample from [`MetricsRegistry::gather`].
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The metric family name (see the crate docs for the naming scheme).
    pub name: String,
    /// Label pairs distinguishing this series within its family
    /// (empty for unlabeled metrics).
    pub labels: Vec<(String, String)>,
    /// The value at gather time.
    pub value: MetricValue,
}

impl Sample {
    /// The full series identity: `name{k="v",...}` (or just the name when
    /// unlabeled). Used as the JSON exposition key.
    #[must_use]
    pub fn identity(&self) -> String {
        identity(&self.name, &self.labels)
    }
}

/// A registry of named metrics.
///
/// # Examples
///
/// ```
/// use clio_obs::MetricsRegistry;
///
/// let reg = MetricsRegistry::new();
/// reg.counter("clio_demo_ops_total").add(3);
/// reg.histogram("clio_demo_latency_ns").record(1500);
/// let text = clio_obs::expo::render_prometheus(&reg);
/// assert!(text.contains("clio_demo_ops_total 3"));
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Entry>>,
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect()
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind —
    /// that is a wiring bug, not a runtime condition.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// The counter series `name{labels…}`, creating it if absent. Series
    /// of one family with different label values are independent counters.
    ///
    /// # Panics
    /// Panics if the series is already registered as a different kind.
    #[must_use]
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let labels = owned_labels(labels);
        let key = identity(name, &labels);
        let mut m = self.metrics.lock();
        match &m
            .entry(key.clone())
            .or_insert_with(|| Entry {
                labels,
                metric: Metric::Counter(Arc::new(Counter::default())),
            })
            .metric
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {key} is not a counter"),
        }
    }

    /// The gauge named `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock();
        match &m
            .entry(name.to_owned())
            .or_insert_with(|| Entry {
                labels: Vec::new(),
                metric: Metric::Gauge(Arc::new(Gauge::default())),
            })
            .metric
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} is not a gauge"),
        }
    }

    /// The histogram named `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// The histogram series `name{labels…}`, creating it if absent.
    ///
    /// # Panics
    /// Panics if the series is already registered as a different kind.
    #[must_use]
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let labels = owned_labels(labels);
        let key = identity(name, &labels);
        let mut m = self.metrics.lock();
        match &m
            .entry(key.clone())
            .or_insert_with(|| Entry {
                labels,
                metric: Metric::Histogram(Arc::new(Histogram::new())),
            })
            .metric
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {key} is not a histogram"),
        }
    }

    /// Registers an existing shared histogram under `name` (for components
    /// that embed their histograms, like `DeviceStats`). Replaces any
    /// previous registration of the name.
    pub fn register_histogram(&self, name: &str, hist: Arc<Histogram>) {
        self.metrics.lock().insert(
            name.to_owned(),
            Entry {
                labels: Vec::new(),
                metric: Metric::Histogram(hist),
            },
        );
    }

    /// Registers a counter collector polled at gather time. Replaces any
    /// previous registration of the name.
    pub fn register_counter_fn(&self, name: &str, f: impl Fn() -> u64 + Send + Sync + 'static) {
        self.metrics.lock().insert(
            name.to_owned(),
            Entry {
                labels: Vec::new(),
                metric: Metric::CounterFn(Box::new(f)),
            },
        );
    }

    /// Registers a gauge collector polled at gather time. Replaces any
    /// previous registration of the name.
    pub fn register_gauge_fn(&self, name: &str, f: impl Fn() -> i64 + Send + Sync + 'static) {
        self.metrics.lock().insert(
            name.to_owned(),
            Entry {
                labels: Vec::new(),
                metric: Metric::GaugeFn(Box::new(f)),
            },
        );
    }

    /// Reads every metric, sorted by series identity (labeled series of
    /// one family sort together, after the unlabeled series if any).
    #[must_use]
    pub fn gather(&self) -> Vec<Sample> {
        let m = self.metrics.lock();
        m.iter()
            .map(|(key, entry)| Sample {
                name: match key.find('{') {
                    Some(brace) => key[..brace].to_owned(),
                    None => key.clone(),
                },
                labels: entry.labels.clone(),
                value: match &entry.metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                    Metric::CounterFn(f) => MetricValue::Counter(f()),
                    Metric::GaugeFn(f) => MetricValue::Gauge(f()),
                },
            })
            .collect()
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.lock().len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("clio_test_ops_total");
        c.inc();
        c.add(4);
        reg.gauge("clio_test_depth").set(-3);
        // Re-asking by name returns the same underlying atomic.
        assert_eq!(reg.counter("clio_test_ops_total").get(), 5);
        let samples = reg.gather();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].name, "clio_test_depth");
        assert_eq!(samples[0].value, MetricValue::Gauge(-3));
        assert_eq!(samples[1].value, MetricValue::Counter(5));
    }

    #[test]
    fn collector_fns_are_polled_at_gather() {
        let reg = MetricsRegistry::new();
        let shared = Arc::new(Counter::default());
        let s2 = shared.clone();
        reg.register_counter_fn("clio_test_shadow_total", move || s2.get());
        shared.add(7);
        let samples = reg.gather();
        assert_eq!(samples[0].value, MetricValue::Counter(7));
        shared.add(1);
        assert_eq!(reg.gather()[0].value, MetricValue::Counter(8));
    }

    #[test]
    fn histograms_register_and_gather() {
        let reg = MetricsRegistry::new();
        reg.histogram("clio_test_latency_ns").record(100);
        let external = Arc::new(Histogram::new());
        external.record(9);
        reg.register_histogram("clio_test_ext_ns", external);
        let samples = reg.gather();
        assert_eq!(samples.len(), 2);
        let MetricValue::Histogram(h) = &samples[0].value else {
            panic!("expected histogram");
        };
        assert_eq!(h.count, 1);
    }

    #[test]
    #[should_panic(expected = "is not a counter")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.gauge("clio_test_x");
        let _ = reg.counter("clio_test_x");
    }

    #[test]
    fn labeled_series_are_independent_and_identified() {
        let reg = MetricsRegistry::new();
        reg.counter_with("clio_log_appends_total", &[("log", "1")])
            .add(2);
        reg.counter_with("clio_log_appends_total", &[("log", "2")])
            .add(5);
        // Re-asking with the same labels returns the same series.
        assert_eq!(
            reg.counter_with("clio_log_appends_total", &[("log", "1")])
                .get(),
            2
        );
        reg.histogram_with("clio_log_append_ns", &[("log", "1")])
            .record(100);
        let samples = reg.gather();
        assert_eq!(samples.len(), 3);
        let appends: Vec<&Sample> = samples
            .iter()
            .filter(|s| s.name == "clio_log_appends_total")
            .collect();
        assert_eq!(appends.len(), 2);
        assert_eq!(appends[0].labels, vec![("log".to_owned(), "1".to_owned())]);
        assert_eq!(appends[0].identity(), "clio_log_appends_total{log=\"1\"}");
        assert_eq!(appends[0].value, MetricValue::Counter(2));
        assert_eq!(appends[1].value, MetricValue::Counter(5));
    }

    #[test]
    fn label_values_are_escaped() {
        let labels = vec![("k".to_owned(), "a\"b\\c\n".to_owned())];
        assert_eq!(label_suffix(&labels), "{k=\"a\\\"b\\\\c\\n\"}");
        assert_eq!(label_suffix(&[]), "");
    }
}
