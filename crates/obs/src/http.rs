//! A std-only HTTP/1.1 observability endpoint.
//!
//! The workspace carries zero registry dependencies, so this is a
//! hand-rolled server over `std::net::TcpListener`: one accept thread, a
//! short-lived thread per connection, GET-only routing over four fixed
//! routes. It serves operators and scrapers, not application traffic —
//! the request grammar it accepts is deliberately minimal (request line +
//! headers, no bodies, `Connection: close` on every response).
//!
//! Routes:
//! - `GET /metrics` — Prometheus text exposition (`text/plain; version=0.0.4`)
//! - `GET /metrics.json` — the same registry as a JSON object
//! - `GET /trace` — recent spans from the flight recorder as JSON trees
//! - `GET /health` — liveness JSON
//!
//! The server binds in [`ObsHttpServer::start`] (so an ephemeral `:0`
//! port is readable immediately via [`ObsHttpServer::local_addr`]) and
//! shuts down when dropped: the accept loop checks a stop flag after
//! every accept, and `Drop` unblocks it with a loopback connection.

use clio_testkit::sync::atomic::{AtomicBool, Ordering};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// What the endpoint serves: a snapshot getter per route. Implemented by
/// the service layer (which owns the registry and trace ring); the HTTP
/// plumbing stays ignorant of both.
pub trait ObsProvider: Send + Sync {
    /// Body for `GET /metrics` (Prometheus text exposition).
    fn metrics_text(&self) -> String;
    /// Body for `GET /metrics.json` (a JSON object).
    fn metrics_json(&self) -> String;
    /// Body for `GET /trace` (recent spans as JSON trees).
    fn trace_json(&self) -> String;
    /// Body for `GET /health`. The default reports liveness only.
    fn health_json(&self) -> String {
        "{\"status\":\"ok\"}".to_owned()
    }
}

/// A running observability endpoint; stops (and joins its accept thread)
/// on drop.
pub struct ObsHttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

/// Longest request head (request line + headers) we accept.
const MAX_HEAD: usize = 8 * 1024;
/// Per-connection socket timeout: an idle or trickling scraper cannot pin
/// a handler thread longer than this.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

impl ObsHttpServer {
    /// Binds `bind` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving `provider`.
    ///
    /// # Errors
    /// Returns the bind error if the address is unavailable.
    pub fn start(bind: &str, provider: Arc<dyn ObsProvider>) -> std::io::Result<ObsHttpServer> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let accept = std::thread::Builder::new()
            .name("clio-obs-http".to_owned())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop2.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let provider = provider.clone();
                    // Fire-and-forget per connection: handlers only read a
                    // bounded head and write one response, and the socket
                    // timeout bounds their lifetime.
                    let _ = std::thread::Builder::new()
                        .name("clio-obs-conn".to_owned())
                        .spawn(move || handle_connection(stream, &*provider));
                }
            })?;
        Ok(ObsHttpServer {
            addr,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (the real port, when started on `:0`).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ObsHttpServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

fn handle_connection(mut stream: TcpStream, provider: &dyn ObsProvider) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(head) = read_head(&mut stream) else {
        return;
    };
    let response = match parse_request_line(&head) {
        Some(("GET", path)) => match path {
            "/metrics" => ok(
                "text/plain; version=0.0.4; charset=utf-8",
                provider.metrics_text(),
            ),
            "/metrics.json" => ok("application/json", provider.metrics_json()),
            "/trace" => ok("application/json", provider.trace_json()),
            "/health" => ok("application/json", provider.health_json()),
            _ => error_response("404 Not Found", "not found\n"),
        },
        Some(_) => error_response("405 Method Not Allowed", "GET only\n"),
        None => error_response("400 Bad Request", "malformed request\n"),
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Reads up to the end of the request head (`\r\n\r\n`); `None` on
/// timeout, oversized head, or early close.
fn read_head(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(256);
    let mut chunk = [0u8; 1024];
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") {
        if buf.len() > MAX_HEAD {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => return None,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
        }
    }
    String::from_utf8(buf).ok()
}

/// Splits `"GET /path HTTP/1.1\r\n..."` into method and path. Query
/// strings are ignored (routes take no parameters).
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split(' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    let path = target.split('?').next().unwrap_or(target);
    Some((method, path))
}

fn ok(content_type: &str, body: String) -> String {
    format!(
        "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

fn error_response(status: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FakeProvider;

    impl ObsProvider for FakeProvider {
        fn metrics_text(&self) -> String {
            "# TYPE clio_up gauge\nclio_up 1\n".to_owned()
        }
        fn metrics_json(&self) -> String {
            "{\"clio_up\":1}".to_owned()
        }
        fn trace_json(&self) -> String {
            "{\"traces\":[]}".to_owned()
        }
    }

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn serves_all_routes_and_404() {
        let server =
            ObsHttpServer::start("127.0.0.1:0", Arc::new(FakeProvider)).expect("bind ephemeral");
        let addr = server.local_addr();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("clio_up 1"));

        let (_, body) = get(addr, "/metrics.json");
        assert_eq!(body, "{\"clio_up\":1}");

        let (_, body) = get(addr, "/trace");
        assert_eq!(body, "{\"traces\":[]}");

        let (head, body) = get(addr, "/health");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(body.contains("\"status\":\"ok\""));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");

        // Query strings are tolerated.
        let (head, _) = get(addr, "/health?verbose=1");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    }

    #[test]
    fn rejects_non_get_and_garbage() {
        let server =
            ObsHttpServer::start("127.0.0.1:0", Arc::new(FakeProvider)).expect("bind ephemeral");
        let addr = server.local_addr();

        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");

        let mut s = TcpStream::connect(addr).expect("connect");
        write!(s, "??\r\n\r\n").expect("send");
        let mut response = String::new();
        s.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
    }

    #[test]
    fn drop_stops_the_listener() {
        let server =
            ObsHttpServer::start("127.0.0.1:0", Arc::new(FakeProvider)).expect("bind ephemeral");
        let addr = server.local_addr();
        drop(server);
        // The port is released: either connect fails or the connection is
        // not served. Re-binding the same port must succeed eventually.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port should be released after drop");
    }
}
