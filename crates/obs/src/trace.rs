//! A fixed-capacity ring buffer of per-operation trace events.
//!
//! The service records one [`TraceEvent`] per logical operation (append,
//! read, locate, create, recover-phase, …). The ring keeps the most recent
//! `capacity` events; older ones are overwritten. [`TraceRing::dump`]
//! renders the surviving events as aligned text — the intended use is
//! printing it from a failing test or bench to see what the service was
//! doing right before things went wrong.

use clio_testkit::sync::Mutex;

/// One traced operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number (global across the ring's lifetime).
    pub seq: u64,
    /// Microseconds since the ring was created.
    pub at_us: u64,
    /// Operation kind, e.g. `"append"`, `"read"`, `"locate"`.
    pub op: &'static str,
    /// The log file (or other target) the op acted on, if any.
    pub target: Option<u64>,
    /// Physical blocks touched by the op, when known.
    pub blocks: u64,
    /// Wall-clock duration of the op in microseconds.
    pub dur_us: u64,
    /// `"ok"` or a short error tag.
    pub outcome: &'static str,
}

struct Ring {
    events: Vec<TraceEvent>,
    next_seq: u64,
    head: usize,
}

/// A bounded, overwrite-oldest trace buffer.
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<Ring>,
    epoch: std::time::Instant,
}

impl TraceRing {
    /// A ring holding at most `capacity` events. A capacity of 0 disables
    /// recording entirely (every `record` is a cheap no-op).
    #[must_use]
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity,
            inner: Mutex::new(Ring {
                events: Vec::with_capacity(capacity.min(1024)),
                next_seq: 0,
                head: 0,
            }),
            epoch: std::time::Instant::now(),
        }
    }

    /// Records one event; assigns `seq` and `at_us`.
    pub fn record(
        &self,
        op: &'static str,
        target: Option<u64>,
        blocks: u64,
        dur: std::time::Duration,
        outcome: &'static str,
    ) {
        if self.capacity == 0 {
            return;
        }
        let at_us = u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
        let dur_us = u64::try_from(dur.as_micros()).unwrap_or(u64::MAX);
        let mut ring = self.inner.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        let ev = TraceEvent {
            seq,
            at_us,
            op,
            target,
            blocks,
            dur_us,
            outcome,
        };
        if ring.events.len() < self.capacity {
            ring.events.push(ev);
        } else {
            let head = ring.head;
            ring.events[head] = ev;
            ring.head = (head + 1) % self.capacity;
        }
    }

    /// The surviving events, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let ring = self.inner.lock();
        let mut out = Vec::with_capacity(ring.events.len());
        out.extend_from_slice(&ring.events[ring.head..]);
        out.extend_from_slice(&ring.events[..ring.head]);
        out
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// Whether no events have been recorded (or capacity is 0).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever recorded, including overwritten ones.
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Maximum events held.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Renders the ring as aligned text, oldest event first.
    #[must_use]
    pub fn dump(&self) -> String {
        let events = self.snapshot();
        let mut out = String::new();
        out.push_str(&format!(
            "trace ring: {} event(s) held, {} recorded, capacity {}\n",
            events.len(),
            self.total_recorded(),
            self.capacity
        ));
        for ev in &events {
            let target = ev
                .target
                .map_or_else(|| "-".to_owned(), |t| format!("log:{t}"));
            out.push_str(&format!(
                "#{:<6} +{:>10}us {:<12} {:<10} blocks={:<5} {:>8}us {}\n",
                ev.seq, ev.at_us, ev.op, target, ev.blocks, ev.dur_us, ev.outcome
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn records_in_order_and_wraps() {
        let ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.record("append", Some(i), i, Duration::from_micros(10), "ok");
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_recorded(), 5);
        let events = ring.snapshot();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(events[0].target, Some(2));
    }

    #[test]
    fn zero_capacity_is_a_noop() {
        let ring = TraceRing::new(0);
        ring.record("read", None, 1, Duration::ZERO, "ok");
        assert!(ring.is_empty());
        assert_eq!(ring.total_recorded(), 0);
        assert!(ring.dump().contains("0 event(s)"));
    }

    #[test]
    fn dump_mentions_every_surviving_event() {
        let ring = TraceRing::new(8);
        ring.record("locate", Some(7), 3, Duration::from_micros(42), "ok");
        ring.record("append", None, 1, Duration::from_micros(5), "io_error");
        let dump = ring.dump();
        assert!(dump.contains("locate"));
        assert!(dump.contains("log:7"));
        assert!(dump.contains("io_error"));
        assert!(dump.contains("capacity 8"));
    }
}
