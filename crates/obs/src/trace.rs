//! Causal span tracing: a fixed-capacity flight recorder of [`Span`]s.
//!
//! Every logical operation (append, read, locate, recover, …) opens a
//! *root* span; the phases it passes through (stage, seal, commit-gate
//! wait, device write, publish, cache load, …) open *child* spans, linked
//! by trace id and parent id. Parentage is implicit: a thread-local stack
//! tracks the span currently open on each thread, so a phase started
//! anywhere inside an operation attaches to that operation without
//! threading handles through every call. Finished spans land in a
//! [`TraceRing`], a bounded overwrite-oldest buffer that can render the
//! surviving spans as per-trace trees ([`TraceRing::dump`] — the "flight
//! recorder" view, intended for printing from a failing test or crash
//! handler) or as a JSON document ([`TraceRing::trace_json`] — the ops
//! plane's `GET /trace` body).
//!
//! Timestamps come from [`crate::clock::now_us`], so a simulator that
//! installs a virtual time source gets byte-identical span trees for the
//! same seed.

use clio_testkit::sync::atomic::{AtomicU64, Ordering};
use std::cell::RefCell;

use clio_testkit::sync::Mutex;

use crate::json::Value;

/// A key/value span attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttrValue {
    /// A numeric attribute (counts, sizes, sequence numbers).
    U64(u64),
    /// A symbolic attribute (roles, modes).
    Str(&'static str),
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::Str(s) => write!(f, "{s}"),
        }
    }
}

/// One finished span: a named phase of one traced operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Monotonic record sequence number (global across the ring's life).
    pub seq: u64,
    /// The trace this span belongs to (the root span's id).
    pub trace: u64,
    /// This span's id, unique within the ring's lifetime.
    pub id: u64,
    /// The enclosing span's id; `None` for a root span.
    pub parent: Option<u64>,
    /// Phase name, e.g. `"append"`, `"stage"`, `"commit_gate"`.
    pub name: &'static str,
    /// The log file (or other target) the span acted on, if any.
    pub target: Option<u64>,
    /// Start, µs (virtual or host — see [`crate::clock::now_us`]).
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// `"ok"` or a short error tag.
    pub outcome: &'static str,
    /// Key/value attributes (leader/follower role, batch size, bytes, …).
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    fn attr_string(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.attrs {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
        }
        out
    }
}

thread_local! {
    /// The stack of spans currently open on this thread, as
    /// `(trace, span id)`. The top is the parent of the next span opened.
    static OPEN: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

struct Ring {
    spans: Vec<Span>,
    next_seq: u64,
    head: usize,
}

/// A bounded, overwrite-oldest buffer of finished [`Span`]s.
pub struct TraceRing {
    capacity: usize,
    inner: Mutex<Ring>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRing")
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl TraceRing {
    /// A ring holding at most `capacity` spans. A capacity of 0 disables
    /// recording entirely (every span is a cheap no-op).
    #[must_use]
    pub fn new(capacity: usize) -> TraceRing {
        TraceRing {
            capacity,
            inner: Mutex::new(Ring {
                spans: Vec::with_capacity(capacity.min(1024)),
                next_seq: 0,
                head: 0,
            }),
            next_id: AtomicU64::new(1),
        }
    }

    /// Opens a span named `name`. If another span is open on this thread,
    /// the new span becomes its child (same trace); otherwise it roots a
    /// fresh trace. The span is recorded when the guard drops (or
    /// [`SpanGuard::finish`]es).
    #[must_use]
    pub fn span<'a>(&'a self, name: &'static str) -> SpanGuard<'a> {
        if self.capacity == 0 {
            return SpanGuard {
                ring: self,
                span: None,
            };
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let parent = OPEN.with(|s| s.borrow().last().copied());
        let (trace, parent) = match parent {
            Some((trace, pid)) => (trace, Some(pid)),
            None => (id, None),
        };
        OPEN.with(|s| s.borrow_mut().push((trace, id)));
        SpanGuard {
            ring: self,
            span: Some(Span {
                seq: 0,
                trace,
                id,
                parent,
                name,
                target: None,
                start_us: crate::clock::now_us(),
                dur_us: 0,
                outcome: "ok",
                attrs: Vec::new(),
            }),
        }
    }

    /// Records a pre-built completed span verbatim (only `seq` is
    /// assigned). Used by tests needing deterministic contents and by
    /// [`TraceRing::record`]; live tracing goes through [`TraceRing::span`].
    pub fn record_span(&self, mut span: Span) {
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.inner.lock();
        span.seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.spans.len() < self.capacity {
            ring.spans.push(span);
        } else {
            let head = ring.head;
            ring.spans[head] = span;
            ring.head = (head + 1) % self.capacity;
        }
    }

    /// Records one already-measured operation as a completed span:
    /// a child of the span currently open on this thread, or a
    /// single-span trace of its own. (The pre-span `TraceRing` API,
    /// still the right shape for ops measured with an explicit timer.)
    pub fn record(
        &self,
        op: &'static str,
        target: Option<u64>,
        blocks: u64,
        dur: std::time::Duration,
        outcome: &'static str,
    ) {
        if self.capacity == 0 {
            return;
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (trace, parent) = match OPEN.with(|s| s.borrow().last().copied()) {
            Some((trace, pid)) => (trace, Some(pid)),
            None => (id, None),
        };
        let dur_us = u64::try_from(dur.as_micros()).unwrap_or(u64::MAX);
        self.record_span(Span {
            seq: 0,
            trace,
            id,
            parent,
            name: op,
            target,
            start_us: crate::clock::now_us().saturating_sub(dur_us),
            dur_us,
            outcome,
            attrs: if blocks > 0 {
                vec![("blocks", AttrValue::U64(blocks))]
            } else {
                Vec::new()
            },
        });
    }

    /// The surviving spans, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Span> {
        let ring = self.inner.lock();
        let mut out = Vec::with_capacity(ring.spans.len());
        out.extend_from_slice(&ring.spans[ring.head..]);
        out.extend_from_slice(&ring.spans[..ring.head]);
        out
    }

    /// Number of spans currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().spans.len()
    }

    /// Whether no spans have been recorded (or capacity is 0).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total spans ever recorded, including overwritten ones.
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().next_seq
    }

    /// Maximum spans held.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The surviving spans grouped into trees, one per trace, ordered by
    /// each trace's first surviving span. Spans whose parent was already
    /// overwritten surface as roots of their trace.
    #[must_use]
    pub fn traces(&self) -> Vec<TraceTree> {
        build_trees(self.snapshot())
    }

    /// Renders the ring as indented per-trace trees — the flight-recorder
    /// view. Oldest trace first; children indented under their parents.
    #[must_use]
    pub fn dump(&self) -> String {
        let spans = self.snapshot();
        let held = spans.len();
        let mut out = format!(
            "trace ring: {held} span(s) held, {} recorded, capacity {}\n",
            self.total_recorded(),
            self.capacity
        );
        for tree in build_trees(spans) {
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!("trace {}\n", tree.trace));
            for root in &tree.roots {
                render_text(root, 1, &mut out);
            }
        }
        out
    }

    /// The surviving spans as a JSON document shaped for `GET /trace`:
    /// `{"traces": [{"trace": id, "spans": [tree…]}]}`.
    #[must_use]
    pub fn trace_json(&self) -> Value {
        Value::obj(vec![(
            "traces",
            Value::Arr(
                self.traces()
                    .into_iter()
                    .map(|t| {
                        Value::obj(vec![
                            ("trace", Value::Int(t.trace as i64)),
                            ("spans", Value::Arr(t.roots.iter().map(node_json).collect())),
                        ])
                    })
                    .collect(),
            ),
        )])
    }
}

/// One span and the children recorded under it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// The span itself.
    pub span: Span,
    /// Child spans, oldest first.
    pub children: Vec<SpanNode>,
}

/// All surviving spans of one trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceTree {
    /// The trace id (the root span's id).
    pub trace: u64,
    /// Top-level spans: the root, plus any span whose parent was
    /// overwritten.
    pub roots: Vec<SpanNode>,
}

fn build_trees(spans: Vec<Span>) -> Vec<TraceTree> {
    use std::collections::BTreeMap;
    // Group by trace, preserving record order within each trace.
    let mut order: Vec<u64> = Vec::new();
    let mut by_trace: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
    for s in spans {
        if !by_trace.contains_key(&s.trace) {
            order.push(s.trace);
        }
        by_trace.entry(s.trace).or_default().push(s);
    }
    order
        .into_iter()
        .map(|trace| {
            let members = by_trace.remove(&trace).unwrap_or_default();
            let present: std::collections::BTreeSet<u64> = members.iter().map(|s| s.id).collect();
            // Assemble bottom-up: each span's children are the members
            // naming it as parent, in record order.
            let mut children: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
            let mut roots: Vec<Span> = Vec::new();
            for s in members {
                match s.parent {
                    Some(p) if present.contains(&p) => {
                        children.entry(p).or_default().push(s);
                    }
                    _ => roots.push(s),
                }
            }
            fn attach(span: Span, children: &mut BTreeMap<u64, Vec<Span>>) -> SpanNode {
                let kids = children.remove(&span.id).unwrap_or_default();
                SpanNode {
                    span,
                    children: kids.into_iter().map(|c| attach(c, children)).collect(),
                }
            }
            TraceTree {
                trace,
                roots: roots
                    .into_iter()
                    .map(|s| attach(s, &mut children))
                    .collect(),
            }
        })
        .collect()
}

fn render_text(node: &SpanNode, depth: usize, out: &mut String) {
    let s = &node.span;
    let target = s.target.map_or_else(String::new, |t| format!(" log:{t}"));
    let _ = std::fmt::Write::write_fmt(
        out,
        format_args!(
            "{:indent$}{}{} +{}us {}us {}{}\n",
            "",
            s.name,
            target,
            s.start_us,
            s.dur_us,
            s.outcome,
            s.attr_string(),
            indent = depth * 2
        ),
    );
    for c in &node.children {
        render_text(c, depth + 1, out);
    }
}

fn node_json(node: &SpanNode) -> Value {
    let s = &node.span;
    let mut fields = vec![
        ("id", Value::Int(s.id as i64)),
        (
            "parent",
            s.parent.map_or(Value::Null, |p| Value::Int(p as i64)),
        ),
        ("name", Value::from(s.name)),
        (
            "target",
            s.target.map_or(Value::Null, |t| Value::Int(t as i64)),
        ),
        ("start_us", Value::Int(s.start_us as i64)),
        ("dur_us", Value::Int(s.dur_us as i64)),
        ("outcome", Value::from(s.outcome)),
    ];
    if !s.attrs.is_empty() {
        fields.push((
            "attrs",
            Value::Obj(
                s.attrs
                    .iter()
                    .map(|(k, v)| {
                        (
                            (*k).to_owned(),
                            match v {
                                AttrValue::U64(n) => Value::Int(*n as i64),
                                AttrValue::Str(t) => Value::from(*t),
                            },
                        )
                    })
                    .collect(),
            ),
        ));
    }
    if !node.children.is_empty() {
        fields.push((
            "children",
            Value::Arr(node.children.iter().map(node_json).collect()),
        ));
    }
    Value::obj(fields)
}

/// An open span; records itself into the ring when dropped (or
/// explicitly [`SpanGuard::finish`]ed). Guards must drop in LIFO order on
/// a thread — the natural consequence of scoping them to the phase they
/// measure.
pub struct SpanGuard<'a> {
    ring: &'a TraceRing,
    span: Option<Span>,
}

impl SpanGuard<'_> {
    /// Attaches a numeric attribute.
    pub fn attr(&mut self, key: &'static str, value: u64) {
        if let Some(s) = &mut self.span {
            s.attrs.push((key, AttrValue::U64(value)));
        }
    }

    /// Attaches a symbolic attribute.
    pub fn attr_str(&mut self, key: &'static str, value: &'static str) {
        if let Some(s) = &mut self.span {
            s.attrs.push((key, AttrValue::Str(value)));
        }
    }

    /// Sets the span's target (log file id or similar).
    pub fn set_target(&mut self, target: u64) {
        if let Some(s) = &mut self.span {
            s.target = Some(target);
        }
    }

    /// Marks the span failed with a short error tag.
    pub fn fail(&mut self, outcome: &'static str) {
        if let Some(s) = &mut self.span {
            s.outcome = outcome;
        }
    }

    /// The span's id within the ring, when tracing is enabled.
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        self.span.as_ref().map(|s| s.id)
    }

    /// Closes and records the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(mut span) = self.span.take() else {
            return;
        };
        span.dur_us = crate::clock::now_us().saturating_sub(span.start_us);
        OPEN.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop our own entry; tolerate (but do not mask) unbalanced
            // drops by searching from the top.
            if let Some(pos) = stack.iter().rposition(|&(_, id)| id == span.id) {
                stack.truncate(pos);
            }
        });
        self.ring.record_span(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn spans_nest_into_one_trace() {
        let ring = TraceRing::new(16);
        {
            let mut root = ring.span("append");
            root.set_target(7);
            {
                let _stage = ring.span("stage");
            }
            {
                let mut gate = ring.span("commit_gate");
                gate.attr_str("role", "leader");
                let _write = ring.span("device_write");
            }
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 4);
        let root = spans.iter().find(|s| s.name == "append").expect("root");
        assert_eq!(root.parent, None);
        assert_eq!(root.target, Some(7));
        for s in &spans {
            assert_eq!(s.trace, root.trace, "all spans share the root's trace");
        }
        let gate = spans
            .iter()
            .find(|s| s.name == "commit_gate")
            .expect("gate");
        assert_eq!(gate.parent, Some(root.id));
        let write = spans
            .iter()
            .find(|s| s.name == "device_write")
            .expect("write");
        assert_eq!(write.parent, Some(gate.id));
        let trees = ring.traces();
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].roots.len(), 1);
        assert_eq!(trees[0].roots[0].children.len(), 2);
    }

    #[test]
    fn sibling_roots_make_separate_traces() {
        let ring = TraceRing::new(8);
        ring.span("read").finish();
        ring.span("read").finish();
        let trees = ring.traces();
        assert_eq!(trees.len(), 2);
    }

    #[test]
    fn record_compat_wraps_and_orders() {
        let ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.record("append", Some(i), i, Duration::from_micros(10), "ok");
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.total_recorded(), 5);
        let spans = ring.snapshot();
        let seqs: Vec<u64> = spans.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(spans[0].target, Some(2));
    }

    #[test]
    fn zero_capacity_is_a_noop() {
        let ring = TraceRing::new(0);
        ring.record("read", None, 1, Duration::ZERO, "ok");
        {
            let mut g = ring.span("append");
            g.attr("bytes", 10);
        }
        assert!(ring.is_empty());
        assert_eq!(ring.total_recorded(), 0);
        assert!(ring.dump().contains("0 span(s)"));
    }

    #[test]
    fn dump_mentions_every_surviving_span() {
        let ring = TraceRing::new(8);
        ring.record("locate", Some(7), 3, Duration::from_micros(42), "ok");
        ring.record("append", None, 1, Duration::from_micros(5), "io_error");
        let dump = ring.dump();
        assert!(dump.contains("locate"));
        assert!(dump.contains("log:7"));
        assert!(dump.contains("io_error"));
        assert!(dump.contains("capacity 8"));
        assert!(dump.contains("blocks=3"));
    }

    #[test]
    fn orphaned_children_surface_as_roots() {
        let ring = TraceRing::new(2);
        {
            let _root = ring.span("append");
            ring.span("stage").finish();
            ring.span("seal").finish();
            // Root records last; capacity 2 keeps {seal, append} only —
            // wait: stage is overwritten, seal's parent (append) survives.
        }
        let trees = ring.traces();
        assert_eq!(trees.len(), 1);
        // seal recorded before append; both survive, seal is append's
        // child even though it was recorded first.
        let names: Vec<&str> = trees[0].roots.iter().map(|n| n.span.name).collect();
        assert_eq!(names, vec!["append"]);
        assert_eq!(trees[0].roots[0].children[0].span.name, "seal");
    }

    #[test]
    fn failed_spans_keep_their_outcome() {
        let ring = TraceRing::new(4);
        {
            let mut g = ring.span("append");
            g.fail("io_error");
        }
        assert_eq!(ring.snapshot()[0].outcome, "io_error");
    }
}
