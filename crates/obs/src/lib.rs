#![warn(missing_docs)]
//! Unified observability for the Clio log service.
//!
//! Every evaluation claim in the paper reduces to counts of physical block
//! operations and their modelled costs (§3, Table 1, Figs. 2–4). This crate
//! is the substrate that lets every layer report those counts uniformly:
//!
//! - [`MetricsRegistry`]: a named registry of atomic [`Counter`]s,
//!   [`Gauge`]s and [`Histogram`]s, plus closure-based collectors for
//!   components that keep their own counters;
//! - [`Histogram`]: lock-free log₂-bucketed latency/size distributions with
//!   `p50/p90/p99/max` quantile estimates, snapshot and merge;
//! - [`TraceRing`]: a fixed-capacity ring of causally linked [`Span`]s
//!   (trace id, parent id, per-phase timestamps, key/value attributes)
//!   with per-trace tree rendering, a crash-readable flight-recorder text
//!   dump, and a JSON form for the `/trace` endpoint;
//! - [`expo`]: exposition of a registry in a Prometheus-style text format
//!   and in JSON, including per-series labels (`name{log="3"}`);
//! - [`http`]: a std-only HTTP/1.1 observability endpoint
//!   (`/metrics`, `/metrics.json`, `/trace`, `/health`);
//! - [`json`]: a minimal in-tree JSON encoder/decoder (the workspace is
//!   std-only by policy — see DESIGN.md — so the bench `--json` output and
//!   its CI validation both use this).
//!
//! Metric naming scheme: `clio_<layer>_<what>[_total|_ns|_us|_bytes]`,
//! e.g. `clio_device_reads_total`, `clio_cache_hits_total`,
//! `clio_core_append_latency_ns`. Counters end in `_total`; histograms
//! name their unit.

pub mod clock;
pub mod expo;
pub mod hist;
pub mod http;
pub mod json;
pub mod registry;
pub mod trace;

pub use hist::{HistSnapshot, Histogram};
pub use http::{ObsHttpServer, ObsProvider};
pub use registry::{Counter, Gauge, MetricValue, MetricsRegistry, Sample};
pub use trace::{AttrValue, Span, SpanGuard, SpanNode, TraceRing, TraceTree};
