//! Lock-free log₂-bucketed histograms.
//!
//! A [`Histogram`] is an array of 65 atomic bucket counters: bucket 0
//! counts the value 0, bucket `i` (1 ≤ i ≤ 64) counts values in
//! `[2^(i-1), 2^i)`. Recording is a handful of relaxed atomic adds —
//! cheap enough for the device read/append hot paths — and quantiles are
//! estimated from the bucket boundaries, so a reported `p99` is an upper
//! bound within a factor of two of the true value. That resolution is
//! plenty for the paper's evaluation, where interesting effects (cache hit
//! vs. optical seek) differ by orders of magnitude.

use clio_testkit::sync::atomic::{AtomicU64, Ordering};

/// Bucket 0 holds zeros; buckets 1..=64 hold `[2^(i-1), 2^i)`.
pub const BUCKETS: usize = 65;

/// A concurrent log₂-bucketed histogram of `u64` samples.
///
/// All updates use relaxed atomics: a [`Histogram::snapshot`] taken while
/// recorders are active may be off by in-flight samples (count/sum/bucket
/// totals can each lag independently), but it never blocks and never sees
/// torn per-counter values.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Which bucket a value falls into.
#[must_use]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// The largest value bucket `i` can hold (its inclusive upper bound).
#[must_use]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        let h = Histogram::default();
        h.min.store(u64::MAX, Ordering::Relaxed);
        h
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] in nanoseconds (saturating).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Copies the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (b, a) in buckets.iter_mut().zip(&self.buckets) {
            *b = a.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the histogram. Not linearizable against concurrent
    /// recorders — intended for between-phase resets in benches and tests.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket sample counts (see [`bucket_upper_bound`]).
    pub buckets: [u64; BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest sample (`u64::MAX` when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> HistSnapshot {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Whether no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper-bound estimate of the `q`-quantile (`0 < q <= 1`): the
    /// upper bound of the bucket holding the sample of that rank, clamped
    /// to the observed `max`. Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// The median estimate.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th-percentile estimate.
    #[must_use]
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Adds `other`'s samples to this snapshot. The result equals (bucket
    /// for bucket) a histogram that recorded both sample sets.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl std::fmt::Display for HistSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "empty");
        }
        write!(
            f,
            "n={} min={} p50≤{} p90≤{} p99≤{} max={} mean={:.1}",
            self.count,
            self.min,
            self.p50(),
            self.p90(),
            self.p99(),
            self.max,
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..64 {
            let hi = bucket_upper_bound(i);
            assert_eq!(bucket_of(hi), i);
            assert_eq!(bucket_of(hi + 1), i + 1);
        }
    }

    #[test]
    fn records_and_estimates() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1111);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        // Quantiles are bucket upper bounds: within 2x above the truth.
        assert!(s.p50() >= 5 && s.p50() < 10, "p50 = {}", s.p50());
        assert_eq!(s.quantile(1.0), 1000);
        assert!(s.p50() <= s.p90() && s.p90() <= s.p99());
    }

    #[test]
    fn empty_snapshot_is_sane() {
        let s = Histogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(format!("{s}"), "empty");
    }

    #[test]
    fn merge_equals_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3u64, 9, 27] {
            a.record(v);
            all.record(v);
        }
        for v in [81u64, 243, 0] {
            b.record(v);
            all.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, all.snapshot());
    }

    #[test]
    fn reset_empties() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert!(h.snapshot().is_empty());
        h.record(7);
        assert_eq!(h.snapshot().min, 7);
    }
}
