//! Multi-threaded stress: concurrent appenders and readers against one
//! service. The service serializes under one state lock; these tests
//! verify the *contract* holds under contention — no lost entries, no
//! torn reads, monotone timestamps per log.

use std::sync::Arc;

use clio::core::service::{AppendOpts, LogService};
use clio::core::ServiceConfig;
use clio::types::{ManualClock, Timestamp, VolumeSeqId};
use clio::volume::MemDevicePool;

fn service() -> Arc<LogService> {
    Arc::new(
        LogService::create(
            VolumeSeqId(1),
            Arc::new(MemDevicePool::new(1024, 1 << 16)),
            ServiceConfig::default(),
            Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
        )
        .unwrap(),
    )
}

#[test]
fn concurrent_appenders_do_not_lose_or_interleave_entries() {
    let svc = service();
    let threads = 8usize;
    let per_thread = 300usize;
    for t in 0..threads {
        svc.create_log(&format!("/t{t}")).unwrap();
    }
    std::thread::scope(|s| {
        for t in 0..threads {
            let svc = svc.clone();
            s.spawn(move || {
                for i in 0..per_thread {
                    let forced = i % 50 == 49;
                    let opts = if forced {
                        AppendOpts::forced()
                    } else {
                        AppendOpts::standard()
                    };
                    svc.append_path(&format!("/t{t}"), format!("t{t}-e{i}").as_bytes(), opts)
                        .unwrap();
                }
            });
        }
    });
    svc.flush().unwrap();
    for t in 0..threads {
        let mut cur = svc.cursor(&format!("/t{t}")).unwrap();
        let got = cur.collect_remaining().unwrap();
        assert_eq!(got.len(), per_thread, "log t{t}");
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.data, format!("t{t}-e{i}").into_bytes());
        }
    }
    // The volume-sequence log holds every entry exactly once.
    let mut cur = svc.cursor("/").unwrap();
    let client_entries = cur
        .collect_remaining()
        .unwrap()
        .into_iter()
        .filter(|e| !e.id.is_reserved())
        .count();
    assert_eq!(client_entries, threads * per_thread);
}

#[test]
fn readers_run_concurrently_with_writers() {
    let svc = service();
    svc.create_log("/live").unwrap();
    // Seed some entries so readers have work from the start.
    for i in 0..50u32 {
        svc.append_path("/live", &i.to_le_bytes(), AppendOpts::standard())
            .unwrap();
    }
    let writes = 1500usize;
    std::thread::scope(|s| {
        {
            let svc = svc.clone();
            s.spawn(move || {
                for i in 50..writes {
                    svc.append_path("/live", &(i as u32).to_le_bytes(), AppendOpts::standard())
                        .unwrap();
                }
            });
        }
        for _ in 0..4 {
            let svc = svc.clone();
            s.spawn(move || {
                // Tail the log while it grows: every observed prefix must
                // be dense and in order.
                let mut cur = svc.cursor("/live").unwrap();
                let mut expect = 0u32;
                loop {
                    match cur.next().unwrap() {
                        Some(e) => {
                            let v = u32::from_le_bytes(e.data[..4].try_into().unwrap());
                            assert_eq!(v, expect, "gap or reorder while tailing");
                            expect += 1;
                            if expect as usize == writes {
                                break;
                            }
                        }
                        None => std::thread::yield_now(),
                    }
                }
            });
        }
    });
}
