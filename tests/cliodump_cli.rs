//! Drives the `cliodump` binary end-to-end on a real volume file.

use std::process::Command;

fn cliodump(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_cliodump"))
        .args(args)
        .output()
        .expect("spawn cliodump");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned() + &String::from_utf8_lossy(&out.stderr),
    )
}

#[test]
fn dump_workflow_on_a_demo_volume() {
    let dir = std::env::temp_dir();
    let vol = dir.join(format!("cliodump-test-{}.clio", std::process::id()));
    let vol = vol.to_str().unwrap();

    let (ok, out) = cliodump(&["mkdemo", vol]);
    assert!(ok, "mkdemo failed: {out}");

    let (ok, out) = cliodump(&["label", vol]);
    assert!(
        ok && out.contains("block size:   512 bytes"),
        "label: {out}"
    );
    assert!(out.contains("entrymap N:   4"));

    let (ok, out) = cliodump(&["verify", vol]);
    assert!(ok && out.contains("0 corrupt"), "verify: {out}");

    let (ok, out) = cliodump(&["logs", vol]);
    assert!(ok && out.contains("/mail/smith"), "logs: {out}");

    let (ok, out) = cliodump(&["cat", "/mail/smith", vol]);
    assert!(
        ok && out.contains("message 0") && out.contains("entries"),
        "cat: {out}"
    );

    let (ok, out) = cliodump(&["tree", vol]);
    assert!(ok && out.contains("level-1 group"), "tree: {out}");

    // Error paths: unknown command and missing file.
    let (ok, _) = cliodump(&["frobnicate", vol]);
    assert!(!ok, "unknown command must fail");
    let (ok, out) = cliodump(&["label", "/nonexistent/volume"]);
    assert!(!ok && out.contains("cliodump:"), "missing file: {out}");

    std::fs::remove_file(vol).unwrap();
}
