//! Randomized crash/recovery storms: the service is killed repeatedly at
//! arbitrary points and must never lose a forced entry, never resurrect a
//! phantom, and always keep entries in order.

use std::sync::Arc;

use clio::core::service::{AppendOpts, LogService};
use clio::core::ServiceConfig;
use clio::device::{RamTailDevice, SharedDevice};
use clio::types::{ManualClock, Timestamp, VolumeSeqId};
use clio::volume::{MemDevicePool, RecordingPool};
use clio_testkit::rng::StdRng;

fn storm(seed: u64, ram_tail: bool) {
    let inner = Arc::new(MemDevicePool::new(512, 96));
    let pool = Arc::new(if ram_tail {
        RecordingPool::wrapping(inner, |base| {
            Arc::new(RamTailDevice::new(base)) as SharedDevice
        })
    } else {
        RecordingPool::new(inner)
    });
    let ck = Arc::new(ManualClock::starting_at(Timestamp::from_secs(1)));
    let cfg = ServiceConfig {
        block_size: 512,
        fanout: 4,
        cache_blocks: 128,
        ..ServiceConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    // The model: every forced entry (and everything before it in the same
    // log, by the prefix property §4) must survive; buffered entries after
    // the last force may vanish.
    let mut forced_prefix = 0usize; // entries guaranteed durable
    let mut written = 0usize; // entries handed to the service
    let mut svc = LogService::create(VolumeSeqId(9), pool.clone(), cfg.clone(), ck.clone())
        .expect("create service");
    svc.create_log("/storm").expect("create log");

    for _round in 0..8 {
        // A burst of appends with occasional forces.
        let burst = rng.gen_range(5..40);
        for _ in 0..burst {
            let forced = rng.gen_bool(0.25);
            let opts = if forced {
                AppendOpts::forced()
            } else {
                AppendOpts::standard()
            };
            let mut payload = format!("entry {written} ").into_bytes();
            payload.resize(rng.gen_range(16..200), b'x');
            svc.append_path("/storm", &payload, opts).expect("append");
            written += 1;
            if forced {
                forced_prefix = written;
            }
        }
        // CRASH.
        drop(svc);
        let (recovered, _) =
            LogService::recover(pool.devices(), pool.clone(), cfg.clone(), ck.clone())
                .expect("recover");
        svc = recovered;
        // Check the survivors: a prefix of what was written, at least the
        // forced prefix, each entry intact and in order.
        let mut cur = svc.cursor("/storm").expect("cursor");
        let got = cur.collect_remaining().expect("scan");
        assert!(
            got.len() >= forced_prefix,
            "seed {seed}: lost forced entries: {} < {forced_prefix}",
            got.len()
        );
        assert!(
            got.len() <= written,
            "seed {seed}: phantom entries: {} > {written}",
            got.len()
        );
        for (i, e) in got.iter().enumerate() {
            assert!(
                e.data.starts_with(format!("entry {i} ").as_bytes()),
                "seed {seed}: entry {i} corrupted or out of order"
            );
        }
        // The survivors define the new baseline.
        written = got.len();
        forced_prefix = written;
    }
}

#[test]
fn crash_storm_pure_worm() {
    for seed in 0..6 {
        storm(seed, false);
    }
}

#[test]
fn crash_storm_ram_tail() {
    for seed in 100..106 {
        storm(seed, true);
    }
}

/// A tailing reader must be able to resume across server crashes: after
/// recovery it re-opens its cursor and fast-forwards past everything it
/// already consumed, and that replay must yield byte-identical entries in
/// the same order — no gaps, no duplicates, no reordering. Entries the
/// reader saw that recovery rolled back (buffered past the last force)
/// simply disappear from the end, never from the middle (§4's prefix
/// property as seen from the read side).
#[test]
fn cursor_tailing_resumes_across_recovery() {
    let inner = Arc::new(MemDevicePool::new(512, 96));
    let pool = Arc::new(RecordingPool::wrapping(inner, |base| {
        Arc::new(RamTailDevice::new(base)) as SharedDevice
    }));
    let ck = Arc::new(ManualClock::starting_at(Timestamp::from_secs(1)));
    let cfg = ServiceConfig {
        block_size: 512,
        fanout: 4,
        cache_blocks: 128,
        ..ServiceConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(0x7A11);
    let mut svc = LogService::create(VolumeSeqId(11), pool.clone(), cfg.clone(), ck.clone())
        .expect("create service");
    svc.create_log("/tail").expect("create log");
    let mut written = 0usize;
    // Everything the tailing reader has consumed, in consumption order.
    let mut observed: Vec<Vec<u8>> = Vec::new();

    for round in 0..8 {
        let burst = rng.gen_range(5..30);
        for _ in 0..burst {
            let opts = if rng.gen_bool(0.3) {
                AppendOpts::forced()
            } else {
                AppendOpts::standard()
            };
            let mut payload = format!("entry {written} ").into_bytes();
            payload.resize(rng.gen_range(16..200), b'x');
            svc.append_path("/tail", &payload, opts).expect("append");
            written += 1;
        }
        let consume = rng.gen_range(0..15);
        {
            // Resume the tail: a fresh cursor fast-forwarded past the
            // already-consumed prefix must replay it exactly.
            let mut cur = svc.cursor("/tail").expect("cursor");
            for (i, want) in observed.iter().enumerate() {
                let e = cur
                    .next()
                    .expect("replay read")
                    .unwrap_or_else(|| panic!("round {round}: consumed entry {i} vanished"));
                assert_eq!(&e.data, want, "round {round}: replayed entry {i} changed");
            }
            for _ in 0..consume {
                match cur.next().expect("tail read") {
                    Some(e) => observed.push(e.data),
                    None => break,
                }
            }
        }
        // CRASH.
        drop(svc);
        let (recovered, _) =
            LogService::recover(pool.devices(), pool.clone(), cfg.clone(), ck.clone())
                .expect("recover");
        svc = recovered;
        let mut check = svc.cursor("/tail").expect("post-recovery cursor");
        let got = check.collect_remaining().expect("post-recovery scan");
        // Rollback may only trim the unconsumed-or-consumed *tail*; the
        // surviving prefix must match what the reader saw verbatim.
        observed.truncate(observed.len().min(got.len()));
        for (i, want) in observed.iter().enumerate() {
            assert_eq!(
                &got[i].data, want,
                "round {round}: entry {i} differs after recovery"
            );
        }
        written = got.len();
    }
    assert!(!observed.is_empty(), "the tail never observed anything");
}
