//! Randomized crash/recovery storms: the service is killed repeatedly at
//! arbitrary points and must never lose a forced entry, never resurrect a
//! phantom, and always keep entries in order.

use std::sync::Arc;

use clio::core::service::{AppendOpts, LogService};
use clio::core::ServiceConfig;
use clio::device::{RamTailDevice, SharedDevice};
use clio::types::{ManualClock, Timestamp, VolumeSeqId};
use clio::volume::{MemDevicePool, RecordingPool};
use clio_testkit::rng::StdRng;

fn storm(seed: u64, ram_tail: bool) {
    let inner = Arc::new(MemDevicePool::new(512, 96));
    let pool = Arc::new(if ram_tail {
        RecordingPool::wrapping(inner, |base| {
            Arc::new(RamTailDevice::new(base)) as SharedDevice
        })
    } else {
        RecordingPool::new(inner)
    });
    let ck = Arc::new(ManualClock::starting_at(Timestamp::from_secs(1)));
    let cfg = ServiceConfig {
        block_size: 512,
        fanout: 4,
        cache_blocks: 128,
        ..ServiceConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    // The model: every forced entry (and everything before it in the same
    // log, by the prefix property §4) must survive; buffered entries after
    // the last force may vanish.
    let mut forced_prefix = 0usize; // entries guaranteed durable
    let mut written = 0usize; // entries handed to the service
    let mut svc = LogService::create(VolumeSeqId(9), pool.clone(), cfg.clone(), ck.clone())
        .expect("create service");
    svc.create_log("/storm").expect("create log");

    for _round in 0..8 {
        // A burst of appends with occasional forces.
        let burst = rng.gen_range(5..40);
        for _ in 0..burst {
            let forced = rng.gen_bool(0.25);
            let opts = if forced {
                AppendOpts::forced()
            } else {
                AppendOpts::standard()
            };
            let mut payload = format!("entry {written} ").into_bytes();
            payload.resize(rng.gen_range(16..200), b'x');
            svc.append_path("/storm", &payload, opts).expect("append");
            written += 1;
            if forced {
                forced_prefix = written;
            }
        }
        // CRASH.
        drop(svc);
        let (recovered, _) =
            LogService::recover(pool.devices(), pool.clone(), cfg.clone(), ck.clone())
                .expect("recover");
        svc = recovered;
        // Check the survivors: a prefix of what was written, at least the
        // forced prefix, each entry intact and in order.
        let mut cur = svc.cursor("/storm").expect("cursor");
        let got = cur.collect_remaining().expect("scan");
        assert!(
            got.len() >= forced_prefix,
            "seed {seed}: lost forced entries: {} < {forced_prefix}",
            got.len()
        );
        assert!(
            got.len() <= written,
            "seed {seed}: phantom entries: {} > {written}",
            got.len()
        );
        for (i, e) in got.iter().enumerate() {
            assert!(
                e.data.starts_with(format!("entry {i} ").as_bytes()),
                "seed {seed}: entry {i} corrupted or out of order"
            );
        }
        // The survivors define the new baseline.
        written = got.len();
        forced_prefix = written;
    }
}

#[test]
fn crash_storm_pure_worm() {
    for seed in 0..6 {
        storm(seed, false);
    }
}

#[test]
fn crash_storm_ram_tail() {
    for seed in 100..106 {
        storm(seed, true);
    }
}
