//! Cross-crate integration tests: the whole stack from devices to
//! applications.

use std::sync::Arc;

use clio::core::service::{AppendOpts, LogService};
use clio::core::uio::LogUio;
use clio::core::{ServiceConfig, Uio, UioSeek};
use clio::device::{MemBlockStore, RamTailDevice, SharedDevice};
use clio::fs::FileSystem;
use clio::history::{HistoryFs, MailSystem};
use clio::types::{ManualClock, Timestamp, VolumeSeqId};
use clio::volume::{MemDevicePool, RecordingPool};

/// The shared crash-simulation pool: records devices, optionally wrapping
/// each in battery-backed RAM tail staging.
fn capturing_pool(block_size: usize, cap: u64, ram_tail: bool) -> Arc<RecordingPool> {
    let inner = Arc::new(MemDevicePool::new(block_size, cap));
    Arc::new(if ram_tail {
        RecordingPool::wrapping(inner, |base| {
            Arc::new(RamTailDevice::new(base)) as SharedDevice
        })
    } else {
        RecordingPool::new(inner)
    })
}

fn clock() -> Arc<ManualClock> {
    Arc::new(ManualClock::starting_at(Timestamp::from_secs(1)))
}

#[test]
fn applications_share_one_service() {
    // The paper's point: one log device, one server, many uses. Mail and a
    // history file server coexist on the same volume sequence, each under
    // its own part of the naming hierarchy.
    let svc = Arc::new(
        LogService::create(
            VolumeSeqId(1),
            capturing_pool(1024, 1 << 16, false),
            ServiceConfig::default(),
            clock(),
        )
        .unwrap(),
    );
    let mail = MailSystem::attach(svc.clone(), "/mail").unwrap();
    let fs = HistoryFs::attach(svc.clone(), "/files").unwrap();
    svc.create_log("/audit").unwrap();

    mail.create_mailbox("smith").unwrap();
    fs.create("doc").unwrap();
    for i in 0..50 {
        mail.deliver("smith", &format!("m{i}"), b"body").unwrap();
        fs.write_at("doc", (i * 4) as u64, &[i as u8; 4]).unwrap();
        svc.append_path(
            "/audit",
            format!("tick {i}").as_bytes(),
            AppendOpts::standard(),
        )
        .unwrap();
    }
    assert_eq!(mail.list("smith").unwrap().len(), 50);
    assert_eq!(fs.read("doc").unwrap().len(), 200);
    let mut cur = svc.cursor("/audit").unwrap();
    assert_eq!(cur.collect_remaining().unwrap().len(), 50);
    // The whole service sees all of it through the root cursor, which
    // walks the append domains shard by shard.
    let mut cur = svc.cursor("/").unwrap();
    let all = cur.collect_remaining().unwrap();
    assert!(all.len() >= 150);
    // Header timestamps are assigned in arrival order, so within one
    // append domain the timestamped entries read back monotonically; the
    // root cursor visits domains in ascending shard order, so monotonicity
    // holds per shard (the address's high bits carry the shard).
    let mut per_shard: std::collections::BTreeMap<u32, Vec<_>> = std::collections::BTreeMap::new();
    for e in &all {
        if let Some(ts) = e.timestamp {
            per_shard
                .entry(e.addr.volume_index >> 24)
                .or_default()
                .push(ts);
        }
    }
    assert!(per_shard.values().map(Vec::len).sum::<usize>() >= 150);
    for stamped in per_shard.values() {
        for w in stamped.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}

#[test]
fn whole_stack_crash_recovery_with_apps() {
    let pool = capturing_pool(1024, 1 << 16, true);
    let ck = clock();
    let cfg = ServiceConfig::default();
    {
        let svc = Arc::new(
            LogService::create(VolumeSeqId(2), pool.clone(), cfg.clone(), ck.clone()).unwrap(),
        );
        let mail = MailSystem::attach(svc.clone(), "/mail").unwrap();
        mail.create_mailbox("u").unwrap();
        for i in 0..20 {
            mail.deliver("u", &format!("s{i}"), format!("body {i}").as_bytes())
                .unwrap();
        }
        // Crash without any explicit shutdown.
    }
    let (svc, _) = LogService::recover(pool.devices(), pool.clone(), cfg, ck).unwrap();
    let svc = Arc::new(svc);
    let mail = MailSystem::attach(svc, "/mail").unwrap();
    assert_eq!(mail.list("u").unwrap().len(), 20);
    assert_eq!(mail.read("u", 19).unwrap().body, b"body 19");
    // And the system keeps working.
    mail.deliver("u", "after", b"recovery").unwrap();
    assert_eq!(mail.list("u").unwrap().len(), 21);
}

#[test]
fn uio_is_uniform_across_file_types() {
    // §6: "log files fit naturally into the abstraction provided by
    // conventional file systems … a uniform I/O interface supports access
    // to this type of file." The same generic code drives a log file and a
    // conventional file.
    fn pump<F: Uio>(f: &mut F, records: &[&[u8]]) -> clio::types::Result<Vec<u8>> {
        for r in records {
            f.uio_write(r)?;
        }
        f.uio_seek(UioSeek::Start)?;
        let mut out = Vec::new();
        let mut buf = [0u8; 7];
        loop {
            let n = f.uio_read(&mut buf)?;
            if n == 0 {
                break;
            }
            out.extend_from_slice(&buf[..n]);
        }
        Ok(out)
    }

    // Log file.
    let svc = LogService::create(
        VolumeSeqId(3),
        capturing_pool(1024, 1 << 16, false),
        ServiceConfig::default(),
        clock(),
    )
    .unwrap();
    svc.create_log("/u").unwrap();
    let mut lf = LogUio::open(&svc, "/u").unwrap();
    let got = pump(&mut lf, &[b"alpha ", b"beta ", b"gamma"]).unwrap();
    assert_eq!(got, b"alpha beta gamma");

    // Conventional file through the same generic function.
    struct FsUio {
        fs: FileSystem<MemBlockStore>,
        ino: u64,
        pos: u64,
    }
    impl Uio for FsUio {
        fn uio_read(&mut self, buf: &mut [u8]) -> clio::types::Result<usize> {
            let n = self.fs.read_at(self.ino, self.pos, buf)?;
            self.pos += n as u64;
            Ok(n)
        }

        fn uio_write(&mut self, data: &[u8]) -> clio::types::Result<usize> {
            let n = self.fs.append(self.ino, data)?;
            Ok(n)
        }

        fn uio_seek(&mut self, to: UioSeek) -> clio::types::Result<()> {
            self.pos = match to {
                UioSeek::Start => 0,
                UioSeek::End => self.fs.stat(self.ino)?.size,
                UioSeek::Offset(o) => o,
                UioSeek::Time(_) => {
                    return Err(clio::types::ClioError::Unsupported(
                        "conventional files have no time axis",
                    ))
                }
            };
            Ok(())
        }
    }
    let fs = FileSystem::mkfs(MemBlockStore::new(512, 512), 32).unwrap();
    let ino = fs.create("/u").unwrap();
    let mut cf = FsUio { fs, ino, pos: 0 };
    let got = pump(&mut cf, &[b"alpha ", b"beta ", b"gamma"]).unwrap();
    assert_eq!(got, b"alpha beta gamma");
}

#[test]
fn log_survives_heavy_multi_volume_growth_and_recovery() {
    // Small volumes, RAM-tail devices, many entries and sublogs, a crash,
    // then full verification.
    let pool = capturing_pool(512, 64, true);
    let ck = clock();
    let cfg = ServiceConfig {
        block_size: 512,
        fanout: 4,
        cache_blocks: 256,
        ..ServiceConfig::default()
    };
    let n_logs = 5usize;
    let per_log = 120usize;
    {
        let svc =
            LogService::create(VolumeSeqId(4), pool.clone(), cfg.clone(), ck.clone()).unwrap();
        svc.create_log("/data").unwrap();
        for l in 0..n_logs {
            svc.create_log(&format!("/data/l{l}")).unwrap();
        }
        for i in 0..per_log {
            for l in 0..n_logs {
                let forced = i % 10 == 9;
                let opts = if forced {
                    AppendOpts::forced()
                } else {
                    AppendOpts::standard()
                };
                let mut payload = format!("log{l} entry{i} ").into_bytes();
                payload.resize(160, b'p');
                svc.append_path(&format!("/data/l{l}"), &payload, opts)
                    .unwrap();
            }
        }
        svc.flush().unwrap();
        assert!(svc.volumes().volume_count() > 3, "should span volumes");
    }
    let (svc, report) = LogService::recover(pool.devices(), pool.clone(), cfg, ck).unwrap();
    assert!(report.volumes > 3);
    for l in 0..n_logs {
        let mut cur = svc.cursor(&format!("/data/l{l}")).unwrap();
        let entries = cur.collect_remaining().unwrap();
        assert_eq!(entries.len(), per_log, "log {l}");
        for (i, e) in entries.iter().enumerate() {
            assert!(
                e.data.starts_with(format!("log{l} entry{i} ").as_bytes()),
                "log {l} entry {i} corrupted"
            );
        }
    }
    // Union over all sublogs.
    let mut cur = svc.cursor("/data").unwrap();
    assert_eq!(cur.collect_remaining().unwrap().len(), n_logs * per_log);
}
