//! Whole-stack exercises of the sharded append domains: routing, global
//! addressing, cross-shard batches, and per-shard recovery joined into
//! one report.

use std::sync::Arc;

use clio::core::service::{AppendOpts, LogService};
use clio::core::ServiceConfig;
use clio::types::{ManualClock, Timestamp, VolumeSeqId};
use clio::volume::{MemDevicePool, RecordingPool};

const SHARDS: usize = 4;
const LOGS: usize = 8;

fn pool(block_size: usize, cap: u64) -> Arc<RecordingPool> {
    Arc::new(RecordingPool::new(Arc::new(MemDevicePool::new(
        block_size, cap,
    ))))
}

fn clock() -> Arc<ManualClock> {
    Arc::new(ManualClock::starting_at(Timestamp::from_secs(1)))
}

fn cfg() -> ServiceConfig {
    ServiceConfig {
        block_size: 512,
        fanout: 4,
        shards: SHARDS,
        ..ServiceConfig::default()
    }
}

fn path(t: usize) -> String {
    format!("/s{t}")
}

#[test]
fn appends_route_across_all_shards_and_read_back() {
    let svc = LogService::create(VolumeSeqId(21), pool(512, 1 << 14), cfg(), clock()).unwrap();
    let mut ids = Vec::new();
    for t in 0..LOGS {
        ids.push(svc.create_log(&path(t)).unwrap());
    }
    // Consecutive top-level ids round-robin over the domains; all four
    // must be in play.
    let shards: std::collections::BTreeSet<u32> = ids.iter().map(|&id| svc.shard_of(id)).collect();
    assert_eq!(shards.len(), SHARDS, "logs must cover every shard");

    let mut receipts = Vec::new();
    for i in 0..30 {
        for (t, &id) in ids.iter().enumerate() {
            let r = svc
                .append(
                    id,
                    format!("log{t} entry{i}").as_bytes(),
                    AppendOpts::standard(),
                )
                .unwrap();
            // The receipt address is global: its high volume-index bits
            // name the owning shard.
            assert_eq!(r.addr.volume_index >> 24, svc.shard_of(id));
            receipts.push((t, i, r));
        }
    }
    svc.flush().unwrap();
    // Random-access reads resolve through the global address back to the
    // right shard.
    for (t, i, r) in &receipts {
        let e = svc.read_entry(r.addr).unwrap();
        assert_eq!(e.data, format!("log{t} entry{i}").as_bytes());
    }
    // Per-log cursors see their own entries only, in order.
    for (t, _) in ids.iter().enumerate() {
        let mut cur = svc.cursor(&path(t)).unwrap();
        let entries = cur.collect_remaining().unwrap();
        assert_eq!(entries.len(), 30, "log {t}");
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.data, format!("log{t} entry{i}").as_bytes());
        }
    }
}

#[test]
fn cross_shard_batch_lands_every_item() {
    let svc = LogService::create(VolumeSeqId(22), pool(512, 1 << 14), cfg(), clock()).unwrap();
    for t in 0..LOGS {
        svc.create_log(&path(t)).unwrap();
    }
    let items: Vec<(String, Vec<u8>)> = (0..LOGS * 3)
        .map(|k| (path(k % LOGS), format!("batch item {k}").into_bytes()))
        .collect();
    let receipts = svc.append_batch(&items, AppendOpts::forced()).unwrap();
    assert_eq!(receipts.len(), items.len());
    // Receipts come back in item order, each readable at its global
    // address, and per-log receipt addresses are strictly increasing.
    let mut last: std::collections::BTreeMap<String, _> = std::collections::BTreeMap::new();
    for ((p, data), r) in items.iter().zip(&receipts) {
        assert_eq!(svc.read_entry(r.addr).unwrap().data, *data);
        if let Some(prev) = last.insert(p.clone(), r.addr) {
            assert!(r.addr > prev, "receipts regressed within {p}");
        }
    }
}

#[test]
fn crash_recovery_joins_all_shards_into_one_report() {
    let pool = pool(512, 96);
    let ck = clock();
    let cfg = cfg();
    let forced_per_log = 6usize;
    {
        let svc =
            LogService::create(VolumeSeqId(23), pool.clone(), cfg.clone(), ck.clone()).unwrap();
        for t in 0..LOGS {
            svc.create_log(&path(t)).unwrap();
        }
        for i in 0..forced_per_log {
            for t in 0..LOGS {
                let mut payload = format!("durable {t}/{i} ").into_bytes();
                payload.resize(120, b'd');
                svc.append_path(&path(t), &payload, AppendOpts::forced())
                    .unwrap();
            }
        }
        // Crash: no flush, no shutdown.
    }
    let (svc, report) =
        LogService::recover(pool.devices(), pool.clone(), cfg.clone(), ck.clone()).unwrap();
    // One joined report covering every shard's volumes (each domain has
    // at least its own active volume).
    assert!(
        report.volumes >= SHARDS as u32,
        "expected >= {SHARDS} volumes, got {}",
        report.volumes
    );
    assert_eq!(
        svc.shard_count(),
        SHARDS,
        "shard count recovered from media"
    );
    for t in 0..LOGS {
        let mut cur = svc.cursor(&path(t)).unwrap();
        let entries = cur.collect_remaining().unwrap();
        assert_eq!(entries.len(), forced_per_log, "log {t} lost forced entries");
        for (i, e) in entries.iter().enumerate() {
            assert!(
                e.data.starts_with(format!("durable {t}/{i} ").as_bytes()),
                "log {t} entry {i} corrupted"
            );
        }
    }
    // The recovered service keeps appending on every shard.
    for t in 0..LOGS {
        svc.append_path(&path(t), b"after recovery", AppendOpts::forced())
            .unwrap();
        let mut cur = svc.cursor(&path(t)).unwrap();
        assert_eq!(cur.collect_remaining().unwrap().len(), forced_per_log + 1);
    }
}

#[test]
fn single_shard_config_stays_legacy_shaped() {
    // shards=1 must behave exactly like the pre-sharding service: local
    // addresses (no shard bits) and one volume stream.
    let cfg = ServiceConfig { shards: 1, ..cfg() };
    let svc = LogService::create(VolumeSeqId(24), pool(512, 1 << 14), cfg, clock()).unwrap();
    let id = svc.create_log("/only").unwrap();
    assert_eq!(svc.shard_of(id), 0);
    let r = svc.append(id, b"entry", AppendOpts::forced()).unwrap();
    assert_eq!(r.addr.volume_index >> 24, 0);
    assert_eq!(svc.shard_count(), 1);
    assert_eq!(svc.read_entry(r.addr).unwrap().data, b"entry");
}
