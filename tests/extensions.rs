//! Integration tests for the paper's extension points: mirrored log
//! devices (§5.1 fn. 11), atomic file update via log recovery (§6), and
//! displaced entrymap entries under write corruption (§2.3.2).

use std::sync::Arc;

use clio::core::service::{AppendOpts, LogService};
use clio::core::ServiceConfig;
use clio::device::{
    FaultPlan, FaultyDevice, LogDevice, MemBlockStore, MemWormDevice, MirroredDevice, SharedDevice,
};
use clio::fs::FileSystem;
use clio::history::AtomicFiles;
use clio::types::{ManualClock, Timestamp, VolumeSeqId};
use clio::volume::DevicePool;
use clio_testkit::sync::Mutex;

fn clock() -> Arc<ManualClock> {
    Arc::new(ManualClock::starting_at(Timestamp::from_secs(1)))
}

#[test]
fn service_runs_on_mirrored_devices_and_survives_replica_rot() {
    // Each "volume" is a 2-way mirror; we rot random blocks on one replica
    // and the service must not notice.
    struct MirrorPool {
        raws: Mutex<Vec<Vec<Arc<MemWormDevice>>>>,
    }
    impl DevicePool for MirrorPool {
        fn next_device(&self) -> clio::types::Result<SharedDevice> {
            let raw: Vec<Arc<MemWormDevice>> = (0..2)
                .map(|_| Arc::new(MemWormDevice::new(512, 4096)))
                .collect();
            let shared: Vec<SharedDevice> = raw.iter().map(|r| r.clone() as SharedDevice).collect();
            self.raws.lock().push(raw);
            Ok(Arc::new(MirroredDevice::new(shared)))
        }
    }
    let pool = Arc::new(MirrorPool {
        raws: Mutex::new(Vec::new()),
    });
    let svc = LogService::create(
        VolumeSeqId(1),
        pool.clone(),
        ServiceConfig {
            block_size: 512,
            fanout: 4,
            cache_blocks: 16, // tiny cache so reads really hit the mirror
            ..ServiceConfig::default()
        },
        clock(),
    )
    .unwrap();
    svc.create_log("/m").unwrap();
    for i in 0..200u32 {
        svc.append_path(
            "/m",
            format!("entry {i}").as_bytes(),
            AppendOpts::standard(),
        )
        .unwrap();
    }
    svc.flush().unwrap();

    // Rot every third block of replica 0 (device-level corruption on one
    // medium).
    {
        // Clone the handle out rather than invalidating under the
        // bookkeeping lock (lockdep flags locks held across device writes).
        let replica0 = pool.raws.lock()[0][0].clone();
        let end = replica0.query_end().unwrap().0;
        for b in (1..end).step_by(3) {
            replica0.invalidate_block(clio::types::BlockNo(b)).unwrap();
        }
    }
    svc.cache().clear();
    let mut cur = svc.cursor("/m").unwrap();
    let all = cur.collect_remaining().unwrap();
    assert_eq!(all.len(), 200, "mirror must mask single-replica rot");
    for (i, e) in all.iter().enumerate() {
        assert_eq!(e.data, format!("entry {i}").into_bytes());
    }
}

#[test]
fn atomic_files_bank_transfer_is_all_or_nothing() {
    let svc = Arc::new(
        LogService::create(
            VolumeSeqId(2),
            Arc::new(clio::volume::MemDevicePool::new(512, 4096)),
            ServiceConfig {
                block_size: 512,
                fanout: 4,
                cache_blocks: 128,
                ..ServiceConfig::default()
            },
            clock(),
        )
        .unwrap(),
    );
    let store = Arc::new(MemBlockStore::new(512, 1024));
    let af = AtomicFiles::attach(svc, FileSystem::mkfs(store, 64).unwrap(), "/txns").unwrap();
    // Set up two accounts atomically, then transfer atomically.
    let mut t = af.begin();
    t.write("/alice", 0, b"0100");
    t.write("/bob", 0, b"0000");
    af.commit(t).unwrap();
    let mut t = af.begin();
    t.write("/alice", 0, b"0050");
    t.write("/bob", 0, b"0050");
    af.commit(t).unwrap();
    let read = |p: &str| {
        let ino = af.fs().lookup(p).unwrap();
        let mut b = [0u8; 4];
        af.fs().read_at(ino, 0, &mut b).unwrap();
        b.to_vec()
    };
    assert_eq!(read("/alice"), b"0050");
    assert_eq!(read("/bob"), b"0050");
}

#[test]
fn displaced_entrymap_entries_remain_findable() {
    // Corrupt the append of a block that carries entrymap records; with
    // verification enabled the service invalidates it and re-places the
    // image (group-tagged maps) in the next block — searches must still
    // find old entries through the displaced maps (§2.3.2).
    struct FaultyPool {
        faulty: Mutex<Option<Arc<FaultyDevice>>>,
    }
    impl DevicePool for FaultyPool {
        fn next_device(&self) -> clio::types::Result<SharedDevice> {
            let f = Arc::new(FaultyDevice::new(
                Arc::new(MemWormDevice::new(512, 8192)),
                FaultPlan::default(),
            ));
            *self.faulty.lock() = Some(f.clone());
            Ok(f)
        }
    }
    let pool = Arc::new(FaultyPool {
        faulty: Mutex::new(None),
    });
    let cfg = ServiceConfig {
        block_size: 512,
        fanout: 4,
        cache_blocks: 16,
        ..ServiceConfig::default()
    }
    .with_verified_appends();
    let svc = LogService::create(VolumeSeqId(3), pool.clone(), cfg, clock()).unwrap();
    svc.create_log("/needle").unwrap();
    svc.create_log("/hay").unwrap();
    svc.append_path("/needle", b"old entry", AppendOpts::forced())
        .unwrap();
    // Fill several entrymap groups; corrupt appends periodically so some
    // boundary blocks (which carry the maps) get invalidated and displaced.
    for i in 0..400u32 {
        if i % 7 == 0 {
            pool.faulty.lock().as_ref().unwrap().corrupt_next_append();
        }
        let mut payload = format!("hay {i} ").into_bytes();
        payload.resize(100, b'h');
        svc.append_path("/hay", &payload, AppendOpts::forced())
            .unwrap();
    }
    // Distant search for the needle from the tail, cold cache.
    svc.cache().clear();
    let mut cur = svc.cursor_from_end("/needle").unwrap();
    let hit = cur.prev().unwrap().expect("needle still locatable");
    assert_eq!(hit.data, b"old entry");
    // And the haystack survived intact despite the corrupted writes.
    let mut cur = svc.cursor("/hay").unwrap();
    let hay = cur.collect_remaining().unwrap();
    assert_eq!(hay.len(), 400);
}

#[test]
fn offline_volumes_fail_cleanly_and_come_back() {
    use clio::types::ClioError;
    use clio::volume::{MemDevicePool, RecordingPool};
    // Small volumes so the log spans several.
    let pool = Arc::new(RecordingPool::new(Arc::new(MemDevicePool::new(512, 48))));
    let svc = LogService::create(
        VolumeSeqId(9),
        pool,
        ServiceConfig {
            block_size: 512,
            fanout: 4,
            cache_blocks: 8, // tiny cache so old volumes really need the medium
            ..ServiceConfig::default()
        },
        clock(),
    )
    .unwrap();
    svc.create_log("/arch").unwrap();
    for i in 0..400u32 {
        let mut payload = format!("rec {i} ").into_bytes();
        payload.resize(120, b'a');
        svc.append_path("/arch", &payload, AppendOpts::standard())
            .unwrap();
    }
    svc.flush().unwrap();
    assert!(svc.volumes().volume_count() >= 3);

    // The active volume cannot be dismounted.
    let active = svc.volumes().volume_count() - 1;
    assert!(svc.volumes().set_offline(active).is_err());

    // Dismount volume 0; flood the cache; old entries now need the medium.
    svc.volumes().set_offline(0).unwrap();
    svc.cache().clear();
    let mut cur = svc.cursor("/arch").unwrap();
    let err = loop {
        match cur.next() {
            Ok(Some(_)) => continue,
            Ok(None) => panic!("scan should hit the offline volume"),
            Err(e) => break e,
        }
    };
    assert!(
        matches!(err, ClioError::VolumeOffline(0)),
        "expected VolumeOffline(0), got {err}"
    );

    // Recent entries (active volume) remain readable while 0 is offline.
    let mut cur = svc.cursor_from_end("/arch").unwrap();
    let last = cur.prev().unwrap().unwrap();
    assert!(last.data.starts_with(b"rec 399 "));

    // Remount and the full history is back.
    svc.volumes().bring_online(0).unwrap();
    let mut cur = svc.cursor("/arch").unwrap();
    assert_eq!(cur.collect_remaining().unwrap().len(), 400);
}
