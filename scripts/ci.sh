#!/usr/bin/env bash
# Tier-1 gate. The workspace is std-only by policy (see DESIGN.md):
# everything must succeed offline, with no registry access at all.
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast on any attempt to reach a registry: point cargo at an
# empty, read-only home so nothing can be fetched or cached.
export CARGO_NET_OFFLINE=true

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check

# No external dependencies: the tree must contain only workspace-path
# crates (all named clio*).
if cargo tree --offline --workspace --prefix none --no-dedupe \
        | awk 'NF {print $1}' | sort -u | grep -qv '^clio'; then
    echo "error: non-workspace dependency in cargo tree:" >&2
    cargo tree --offline --workspace --prefix none --no-dedupe \
        | awk 'NF {print $1}' | sort -u | grep -v '^clio' >&2
    exit 1
fi

# Leftover references to the retired registry crates are a regression.
if grep -rn "parking_lot\|crossbeam\|proptest\|criterion\|rand::" \
        crates src tests --include='*.rs' --include='*.toml' 2>/dev/null; then
    echo "error: reference to a retired external dependency (see above)" >&2
    exit 1
fi

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo test -q --offline --workspace -- --include-ignored

echo "ci: all green"
