#!/usr/bin/env bash
# Tier-1 gate. The workspace is std-only by policy (see DESIGN.md):
# everything must succeed offline, with no registry access at all.
set -euo pipefail
cd "$(dirname "$0")/.."

# Fail fast on any attempt to reach a registry: point cargo at an
# empty, read-only home so nothing can be fetched or cached.
export CARGO_NET_OFFLINE=true

run() {
    echo "==> $*"
    "$@"
}

run cargo fmt --all -- --check

# No external dependencies: the tree must contain only workspace-path
# crates (all named clio*).
if cargo tree --offline --workspace --prefix none --no-dedupe \
        | awk 'NF {print $1}' | sort -u | grep -qv '^clio'; then
    echo "error: non-workspace dependency in cargo tree:" >&2
    cargo tree --offline --workspace --prefix none --no-dedupe \
        | awk 'NF {print $1}' | sort -u | grep -v '^clio' >&2
    exit 1
fi

# Workspace policy rules: retired registry deps, raw std locks, host
# clock reads, the device-layer WORM write surface, and the unwrap
# ratchet. clio-lint lexes real token streams, so comments and strings
# don't trip it the way they tripped the old grep.
run cargo run --release --offline -p clio-lint

run cargo build --release --offline --workspace
run cargo test -q --offline --workspace
run cargo test -q --offline --workspace -- --include-ignored

# Lock-order validation: the whole core suite again with lockdep
# recording every acquisition edge; any inversion or lock held across
# blocking device I/O panics with both acquisition sites.
echo "==> CLIO_LOCKDEP=1 cargo test -q --offline -p clio-core"
CLIO_LOCKDEP=1 cargo test -q --offline -p clio-core

# Clippy is part of the gate wherever the toolchain ships it.
if cargo clippy --version >/dev/null 2>&1; then
    run cargo clippy --offline --workspace --all-targets -- -D warnings
else
    echo "==> cargo clippy not installed; skipping"
fi

# The concurrency stress tests race real threads; run them optimized so
# the schedules they exercise resemble production interleavings.
run cargo test -q --release --offline -p clio-core --test concurrent_reads

# Torn-batch crash recovery: the group-commit vectored write torn at
# every prefix length must recover to a consistent prefix. Run released
# so the full tear sweep stays fast.
run cargo test -q --release --offline -p clio-core --test recovery_torn_tail

# A/B the append pipeline: the whole core suite must also pass with
# group commit disabled (the legacy one-write-per-forced-append path).
echo "==> CLIO_GROUP_COMMIT=0 cargo test -q --offline -p clio-core"
CLIO_GROUP_COMMIT=0 cargo test -q --offline -p clio-core

# Deterministic whole-system simulation storm: 25 seeds of multi-client
# virtual-time interleaving with seeded mid-run crashes, every history
# checked against the log model. A failing seed prints its replay line
# (CLIO_PROP_SEED=<n>); run released so the sweep stays fast. (The
# default 5-seed storm and single-seed smoke already ran in the
# workspace debug pass above.)
echo "==> CLIO_SIM_SEEDS=25 cargo test -q --release --offline -p clio-core --test simulation"
CLIO_SIM_SEEDS=25 cargo test -q --release --offline -p clio-core --test simulation

# Concurrency model checking: the four protocol models (commit gate,
# ArcCell publish, single-flight, sealed-queue drain) plus the canary
# suite under the larger release budget (2,000 DFS + 2,000 random
# schedules per model). A failure prints both access sites and a
# CLIO_CHECK_REPLAY=<seed>:<index> line that re-runs the exact schedule.
# (The 1,000-schedule debug budget already ran in the workspace pass.)
echo "==> CLIO_MODEL_CHECK=1 cargo test -q --release --offline -p clio-core --test model_*"
CLIO_MODEL_CHECK=1 cargo test -q --release --offline -p clio-core \
    --test model_commit_gate --test model_arccell_publish \
    --test model_single_flight --test model_sealed_queue \
    --test model_canary

# The model checker's own scheduler is unsafe-free but relies on subtle
# std primitives; run its crate under miri wherever the toolchain ships
# it (like the clippy guard above — the release toolchain usually
# doesn't, nightlies do).
if cargo miri --version >/dev/null 2>&1; then
    echo "==> cargo miri test -q --offline -p clio-testkit"
    cargo miri test -q --offline -p clio-testkit
else
    echo "==> cargo miri not installed; skipping"
fi

# Smoke the machine-readable bench output: one harness with --json must
# emit a file the in-tree decoder accepts.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
run cargo build --release --offline -p clio-bench --bin fig2_tree
run cargo build --release --offline -p clio-obs --bin clio_json_check
(cd "$smoke_dir" && run "$OLDPWD"/target/release/fig2_tree --json > /dev/null)
[ -f "$smoke_dir/BENCH_fig2_tree.json" ] || {
    echo "error: fig2_tree --json did not write BENCH_fig2_tree.json" >&2
    exit 1
}
run ./target/release/clio_json_check "$smoke_dir/BENCH_fig2_tree.json"

# Smoke the concurrent-read scaling harness: a shrunk run must complete
# and emit valid JSON (scaling numbers themselves are host-dependent).
run cargo build --release --offline -p clio-bench --bin conc_read
(cd "$smoke_dir" && run "$OLDPWD"/target/release/conc_read --json --quick > /dev/null)
[ -f "$smoke_dir/BENCH_conc_read.json" ] || {
    echo "error: conc_read --json did not write BENCH_conc_read.json" >&2
    exit 1
}
run ./target/release/clio_json_check "$smoke_dir/BENCH_conc_read.json"

# Smoke the group-commit harness: a shrunk run must complete and emit
# valid JSON (the coalescing ratio itself is host-dependent).
run cargo build --release --offline -p clio-bench --bin group_commit
(cd "$smoke_dir" && run "$OLDPWD"/target/release/group_commit --json --quick > /dev/null)
[ -f "$smoke_dir/BENCH_group_commit.json" ] || {
    echo "error: group_commit --json did not write BENCH_group_commit.json" >&2
    exit 1
}
run ./target/release/clio_json_check "$smoke_dir/BENCH_group_commit.json"

# Smoke the multi-shard scaling harness, then guard the sharding win:
# two single-configuration runs (1 shard vs 4 shards, same thread count)
# are diffed on the forced-append cost scalar with --direction=up — the
# per-append cost must not rise when appends spread over more domains.
# On a 1-core host contention still drops but scheduling noise dominates,
# so the diff only gates multi-core hosts (the sweep itself always runs).
run cargo build --release --offline -p clio-bench --bin multi_shard
run cargo build --release --offline -p clio-bench --bin bench_diff
(cd "$smoke_dir" && run "$OLDPWD"/target/release/multi_shard --json --quick > /dev/null)
[ -f "$smoke_dir/BENCH_multi_shard.json" ] || {
    echo "error: multi_shard --json did not write BENCH_multi_shard.json" >&2
    exit 1
}
run ./target/release/clio_json_check "$smoke_dir/BENCH_multi_shard.json"
if [ "$(nproc)" -gt 1 ]; then
    (cd "$smoke_dir" && run "$OLDPWD"/target/release/multi_shard --shards=1 --json --quick > /dev/null)
    mv "$smoke_dir/BENCH_multi_shard.json" "$smoke_dir/BENCH_multi_shard.shards1.json"
    (cd "$smoke_dir" && run "$OLDPWD"/target/release/multi_shard --shards=4 --json --quick > /dev/null)
    run ./target/release/bench_diff "$smoke_dir/BENCH_multi_shard.shards1.json" \
        "$smoke_dir/BENCH_multi_shard.json" --direction=up
else
    echo "==> single-core host; skipping the shards=1 vs shards=4 bench_diff gate"
fi

# Smoke the ops plane: the scrape-latency harness starts a real server
# with the HTTP endpoint on an ephemeral port and scrapes every route
# over a plain TcpStream (no curl), so this exercises bind, routing,
# Prometheus/JSON rendering and clean shutdown end to end.
run cargo build --release --offline -p clio-bench --bin obs_http
(cd "$smoke_dir" && run "$OLDPWD"/target/release/obs_http --json --quick > /dev/null)
[ -f "$smoke_dir/BENCH_obs_http.json" ] || {
    echo "error: obs_http --json did not write BENCH_obs_http.json" >&2
    exit 1
}
run ./target/release/clio_json_check "$smoke_dir/BENCH_obs_http.json"

# bench_diff must pass a report against itself (exit 0) and catch a
# doctored regression (exit 1).
run cargo build --release --offline -p clio-bench --bin bench_diff
run ./target/release/bench_diff "$smoke_dir/BENCH_obs_http.json" "$smoke_dir/BENCH_obs_http.json"
sed 's/"background_appends": \([0-9]*\)/"background_appends": 99999999/' \
    "$smoke_dir/BENCH_obs_http.json" > "$smoke_dir/BENCH_obs_http.doctored.json"
if ./target/release/bench_diff "$smoke_dir/BENCH_obs_http.json" \
        "$smoke_dir/BENCH_obs_http.doctored.json" > /dev/null; then
    echo "error: bench_diff missed a doctored regression" >&2
    exit 1
fi

echo "ci: all green"
