#![warn(missing_docs)]
//! Clio: an extended file service providing log files on write-once storage.
//!
//! Umbrella crate re-exporting all Clio subsystems.
pub use clio_cache as cache;
pub use clio_core as core;
pub use clio_device as device;
pub use clio_entrymap as entrymap;
pub use clio_format as format;
pub use clio_fs as fs;
pub use clio_history as history;
pub use clio_obs as obs;
pub use clio_sim as sim;
pub use clio_testkit as testkit;
pub use clio_types as types;
pub use clio_volume as volume;
