//! `cliodump` — inspect Clio log volumes.
//!
//! The paper expects log files to be "accessed and managed using the same
//! I/O and utility routines that are used to access and manage conventional
//! files" (§2); this is the fsck/dump side of that tool set, operating on
//! file-backed volumes:
//!
//! ```text
//! cliodump mkdemo <file>             create a demo volume to play with
//! cliodump label  <file>             show the volume label
//! cliodump verify <file>             CRC-check every block
//! cliodump blocks <file>             per-block summary
//! cliodump tree   <file>             dump the entrymap records
//! cliodump logs   <file>...          mount a sequence, list the catalog
//! cliodump cat <path> <file>...      dump a log file's entries
//! ```

use std::io::{Read, Write};
use std::process::ExitCode;
use std::sync::Arc;

use clio::core::service::{AppendOpts, LogService};
use clio::core::ServiceConfig;
use clio::device::{FileWormDevice, SharedDevice};
use clio::format::{BlockView, EntrymapRecord, VolumeLabel};
use clio::types::{LogFileId, Result, SystemClock, VolumeSeqId};
use clio::volume::{MemDevicePool, RecordingPool};

/// Prints a line to stdout, exiting quietly if the reader went away
/// (`cliodump blocks volume | head` must not panic on the broken pipe).
macro_rules! outln {
    ($($arg:tt)*) => {{
        let mut out = std::io::stdout().lock();
        if writeln!(out, $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) => run(cmd, rest),
        None => {
            usage();
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("cliodump: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: cliodump <mkdemo|label|verify|blocks|tree> <volume-file>\n       cliodump <logs> <volume-file>...\n       cliodump cat <log-path> <volume-file>..."
    );
}

fn run(cmd: &str, rest: &[String]) -> Result<()> {
    match (cmd, rest) {
        ("mkdemo", [file]) => mkdemo(file),
        ("label", [file]) => label(file),
        ("verify", [file]) => verify(file),
        ("blocks", [file]) => blocks(file),
        ("tree", [file]) => tree(file),
        ("logs", files) if !files.is_empty() => logs(files),
        ("cat", [path, files @ ..]) if !files.is_empty() => cat(path, files),
        _ => {
            usage();
            Err(clio::types::ClioError::BadPath(format!(
                "unknown command or missing arguments: {cmd}"
            )))
        }
    }
}

/// Reads the block size out of the raw label without knowing the geometry.
fn probe_block_size(file: &str) -> Result<usize> {
    let mut f = std::fs::File::open(file)?;
    let mut head = [0u8; 64];
    let n = f.read(&mut head)?;
    if n < 47 {
        return Err(clio::types::ClioError::BadRecord(
            "file too short for a label",
        ));
    }
    let bs = u32::from_le_bytes(head[33..37].try_into().expect("4 bytes"));
    if !(128..=65536).contains(&(bs as usize)) {
        return Err(clio::types::ClioError::BadRecord(
            "implausible block size in label",
        ));
    }
    Ok(bs as usize)
}

fn open_device(file: &str) -> Result<(SharedDevice, usize)> {
    let bs = probe_block_size(file)?;
    let len = std::fs::metadata(file)?.len();
    let dev = FileWormDevice::open(file, bs, (len / bs as u64).max(1))?;
    Ok((Arc::new(dev), bs))
}

fn read_label(file: &str) -> Result<VolumeLabel> {
    let (dev, bs) = open_device(file)?;
    let mut buf = vec![0u8; bs];
    dev.read_block(clio::types::BlockNo(0), &mut buf)?;
    VolumeLabel::decode(&buf)
}

fn mkdemo(file: &str) -> Result<()> {
    let cfg = ServiceConfig {
        block_size: 512,
        fanout: 4,
        // One append domain: the demo is a single volume file.
        shards: 1,
        ..ServiceConfig::default()
    };
    let path = file.to_owned();
    let volumes = std::sync::atomic::AtomicU32::new(0);
    let pool = Arc::new(RecordingPool::wrapping(
        Arc::new(MemDevicePool::new(512, 4096)),
        move |_ignored| {
            // Successor volumes get numbered siblings of the first file;
            // never re-create (and truncate) an existing volume.
            let n = volumes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let p = if n == 0 {
                path.clone()
            } else {
                format!("{path}.{n}")
            };
            Arc::new(FileWormDevice::create(&p, 512, 4096).expect("create demo volume file"))
                as SharedDevice
        },
    ));
    let svc = LogService::create(VolumeSeqId(77), pool, cfg, Arc::new(SystemClock))?;
    svc.create_log("/mail")?;
    svc.create_log("/mail/smith")?;
    svc.create_log("/audit")?;
    for i in 0..40 {
        svc.append_path(
            "/audit",
            format!("login user{} tty{}", i % 5, i).as_bytes(),
            AppendOpts::standard(),
        )?;
        if i % 4 == 0 {
            svc.append_path(
                "/mail/smith",
                format!("message {i}").as_bytes(),
                AppendOpts::forced(),
            )?;
        }
    }
    svc.flush()?;
    outln!("demo volume written to {file}");
    Ok(())
}

fn label(file: &str) -> Result<()> {
    let l = read_label(file)?;
    outln!("volume:       {}", l.volume);
    outln!("sequence:     {}", l.sequence);
    outln!("index:        {}", l.volume_index);
    outln!(
        "predecessor:  {}",
        l.predecessor.map_or("(none)".to_owned(), |p| p.to_string())
    );
    outln!("block size:   {} bytes", l.block_size);
    outln!("entrymap N:   {}", l.fanout);
    outln!("created:      {}", l.created);
    Ok(())
}

fn with_blocks<F: FnMut(u64, &[u8])>(file: &str, mut f: F) -> Result<()> {
    let (dev, bs) = open_device(file)?;
    let end = dev.query_end().map_or(0, |b| b.0);
    let mut buf = vec![0u8; bs];
    for b in 1..end {
        dev.read_block(clio::types::BlockNo(b), &mut buf)?;
        f(b - 1, &buf);
    }
    Ok(())
}

fn verify(file: &str) -> Result<()> {
    let mut good = 0u64;
    let mut invalidated = Vec::new();
    let mut corrupt = Vec::new();
    with_blocks(file, |db, img| match BlockView::parse(img) {
        Ok(_) => good += 1,
        Err(clio::types::ClioError::InvalidatedBlock(_)) => invalidated.push(db),
        Err(_) => corrupt.push(db),
    })?;
    outln!("{good} good blocks");
    outln!("{} invalidated: {invalidated:?}", invalidated.len());
    outln!("{} corrupt:     {corrupt:?}", corrupt.len());
    if corrupt.is_empty() {
        Ok(())
    } else {
        Err(clio::types::ClioError::CorruptBlock(clio::types::BlockNo(
            corrupt[0] + 1,
        )))
    }
}

fn blocks(file: &str) -> Result<()> {
    outln!(
        "{:>8}  {:>7}  {:>16}  flags",
        "block",
        "entries",
        "first-ts"
    );
    with_blocks(file, |db, img| match BlockView::parse(img) {
        Ok(v) => {
            let f = v.flags();
            let mut flags = String::new();
            if f.has_entrymap {
                flags.push('M');
            }
            if f.continues_prev {
                flags.push('C');
            }
            if f.sealed_early {
                flags.push('F');
            }
            outln!(
                "{db:>8}  {:>7}  {:>16}  {flags}",
                v.count(),
                v.first_ts().to_string()
            );
        }
        Err(e) => outln!("{db:>8}  {e}"),
    })
}

fn tree(file: &str) -> Result<()> {
    with_blocks(file, |db, img| {
        let Ok(v) = BlockView::parse(img) else { return };
        for e in v.entries() {
            let Ok(e) = e else { break };
            if e.header.id != LogFileId::ENTRYMAP {
                continue;
            }
            if let Ok(rec) = EntrymapRecord::decode(e.payload) {
                let files: Vec<String> = rec
                    .maps
                    .iter()
                    .map(|(id, bm)| {
                        format!(
                            "{id}:{}",
                            (0..bm.len())
                                .map(|i| if bm.get(i) { '1' } else { '0' })
                                .collect::<String>()
                        )
                    })
                    .collect();
                outln!(
                    "block {db:>6}: level-{} group {:>6} ({} files){}{}",
                    rec.level,
                    rec.group,
                    rec.maps.len(),
                    if rec.continued { " [continued]" } else { "" },
                    if files.is_empty() {
                        String::new()
                    } else {
                        format!("  {}", files.join("  "))
                    }
                );
            }
        }
    })
}

/// Mounts volume files read-only as a service (recovery path).
fn mount(files: &[String]) -> Result<LogService> {
    let mut devices: Vec<SharedDevice> = Vec::new();
    let mut bs = 0usize;
    for f in files {
        let (dev, b) = open_device(f)?;
        bs = b;
        devices.push(dev);
    }
    // The pool is only consulted if the service writes; dumping never does.
    let pool = Arc::new(MemDevicePool::new(bs, 16));
    let (svc, _) = LogService::recover(
        devices,
        pool,
        ServiceConfig::default(),
        Arc::new(SystemClock),
    )?;
    Ok(svc)
}

fn logs(files: &[String]) -> Result<()> {
    let svc = mount(files)?;
    outln!("{} volume(s) mounted", svc.volumes().volume_count());
    fn walk(svc: &LogService, path: &str, depth: usize) -> Result<()> {
        for name in svc.list(path)? {
            let child = if path == "/" {
                format!("/{name}")
            } else {
                format!("{path}/{name}")
            };
            let id = svc.resolve(&child)?;
            let attrs = svc.attrs(id)?;
            outln!(
                "{:indent$}{child}  (id {id}, perms {:#x}{})",
                "",
                attrs.perms,
                if attrs.sealed { ", sealed" } else { "" },
                indent = depth * 2
            );
            walk(svc, &child, depth + 1)?;
        }
        Ok(())
    }
    walk(&svc, "/", 0)
}

fn cat(path: &str, files: &[String]) -> Result<()> {
    let svc = mount(files)?;
    let mut cur = svc.cursor(path)?;
    let mut n = 0u64;
    while let Some(e) = cur.next()? {
        n += 1;
        // Escape control bytes so binary payloads (catalog records, etc.)
        // stay terminal-safe.
        let preview: String = e.data[..e.data.len().min(72)]
            .iter()
            .map(|&b| {
                if (0x20..0x7F).contains(&b) {
                    char::from(b)
                } else {
                    '.'
                }
            })
            .collect();
        outln!(
            "[{}] {} {} bytes: {}",
            e.effective_ts(),
            e.id,
            e.data.len(),
            preview
        );
    }
    outln!("{n} entries");
    Ok(())
}
