//! Atomic update of regular files using log files for recovery — the
//! extension the paper announces as planned work (§6).
//!
//! A bank-transfer style multi-file update either fully happens or fully
//! doesn't, across crashes at any point, because the intentions live in a
//! log file whose COMMIT record is forced before the conventional file
//! system is touched.
//!
//! Run with: `cargo run --example atomic_update`

use std::sync::Arc;

use clio::core::service::LogService;
use clio::core::ServiceConfig;
use clio::device::MemBlockStore;
use clio::fs::FileSystem;
use clio::history::AtomicFiles;
use clio::types::{ManualClock, Timestamp, VolumeSeqId};
use clio::volume::MemDevicePool;

fn read(af: &AtomicFiles<Arc<MemBlockStore>>, path: &str) -> String {
    let ino = af.fs().lookup(path).expect("file exists");
    let size = af.fs().stat(ino).expect("stat").size;
    let mut buf = vec![0u8; size as usize];
    af.fs().read_at(ino, 0, &mut buf).expect("read");
    String::from_utf8_lossy(&buf).into_owned()
}

fn main() -> clio::types::Result<()> {
    let svc = Arc::new(LogService::create(
        VolumeSeqId(6),
        Arc::new(MemDevicePool::new(1024, 1 << 16)),
        ServiceConfig::default(),
        Arc::new(ManualClock::starting_at(Timestamp::from_secs(1))),
    )?);
    // The conventional file system lives on an ordinary rewriteable disk;
    // sharing the store through an Arc lets us "crash" (drop the mounted
    // FS) and remount the same medium.
    let store = Arc::new(MemBlockStore::new(512, 2048));
    let af = AtomicFiles::attach(
        svc.clone(),
        FileSystem::mkfs(store.clone(), 64)?,
        "/intentions",
    )?;

    // Open two accounts in one atomic transaction.
    let mut t = af.begin();
    t.write("/bank/alice", 0, b"balance=100");
    t.write("/bank/bob", 0, b"balance=000");
    af.commit(t)?;
    println!(
        "opened:   alice={:?} bob={:?}",
        read(&af, "/bank/alice"),
        read(&af, "/bank/bob")
    );

    // Transfer 50, atomically.
    let mut t = af.begin();
    t.write("/bank/alice", 0, b"balance=050");
    t.write("/bank/bob", 0, b"balance=050");
    af.commit(t)?;
    println!(
        "transfer: alice={:?} bob={:?}",
        read(&af, "/bank/alice"),
        read(&af, "/bank/bob")
    );

    // Crash: the mounted file system and the atomic layer evaporate. Only
    // the rewriteable medium and the write-once log survive.
    drop(af);

    // Remount + re-attach: recovery replays the intentions log and redoes
    // anything committed but unapplied.
    let af = AtomicFiles::attach(svc, FileSystem::mount(store)?, "/intentions")?;
    println!(
        "recovered: alice={:?} bob={:?}",
        read(&af, "/bank/alice"),
        read(&af, "/bank/bob")
    );
    assert_eq!(read(&af, "/bank/alice"), "balance=050");
    assert_eq!(read(&af, "/bank/bob"), "balance=050");
    println!("the transfer is exactly-once across the crash");
    Ok(())
}
