//! Database-style transaction recovery over log files (§1: applications
//! "use this history to recover its current state" after a failure).
//!
//! A tiny key-value store logs updates per transaction and forces a COMMIT
//! record (§2.3.1: "log entries are written synchronously to the log
//! device when forced (such as on a transaction commit)"). After a crash,
//! replaying the log reconstructs exactly the committed state: updates of
//! uncommitted transactions are discarded.
//!
//! Run with: `cargo run --example transaction_recovery`

use std::collections::HashMap;
use std::sync::Arc;

use clio::core::service::{AppendOpts, LogService};
use clio::core::ServiceConfig;
use clio::types::{ManualClock, Timestamp, VolumeSeqId};
use clio::volume::{MemDevicePool, RecordingPool};

/// Log records of the KV store.
fn set_record(txn: u32, key: &str, value: &str) -> Vec<u8> {
    format!("SET {txn} {key}={value}").into_bytes()
}

fn commit_record(txn: u32) -> Vec<u8> {
    format!("COMMIT {txn}").into_bytes()
}

/// Replays the log into (committed state, committed transaction set).
fn replay(svc: &LogService) -> clio::types::Result<HashMap<String, String>> {
    let mut staged: HashMap<u32, Vec<(String, String)>> = HashMap::new();
    let mut state = HashMap::new();
    let mut cur = svc.cursor("/wal")?;
    while let Some(e) = cur.next()? {
        let text = String::from_utf8_lossy(&e.data).into_owned();
        if let Some(rest) = text.strip_prefix("SET ") {
            let (txn, kv) = rest.split_once(' ').expect("well-formed record");
            let (k, v) = kv.split_once('=').expect("well-formed record");
            staged
                .entry(txn.parse().expect("txn id"))
                .or_default()
                .push((k.to_owned(), v.to_owned()));
        } else if let Some(txn) = text.strip_prefix("COMMIT ") {
            let txn: u32 = txn.parse().expect("txn id");
            for (k, v) in staged.remove(&txn).unwrap_or_default() {
                state.insert(k, v);
            }
        }
    }
    Ok(state)
}

fn main() -> clio::types::Result<()> {
    // A recording pool remembers its devices so we can "crash" and remount.
    let pool = Arc::new(RecordingPool::new(Arc::new(MemDevicePool::new(
        1024,
        1 << 16,
    ))));
    let clock = Arc::new(ManualClock::starting_at(Timestamp::from_secs(10)));
    let cfg = ServiceConfig::default();
    let svc = LogService::create(VolumeSeqId(3), pool.clone(), cfg.clone(), clock.clone())?;
    svc.create_log("/wal")?;

    // Transaction 1: committed (updates buffered, commit forced).
    svc.append_path(
        "/wal",
        &set_record(1, "alice", "100"),
        AppendOpts::standard(),
    )?;
    svc.append_path("/wal", &set_record(1, "bob", "50"), AppendOpts::standard())?;
    svc.append_path("/wal", &commit_record(1), AppendOpts::forced())?;

    // Transaction 2: committed.
    svc.append_path(
        "/wal",
        &set_record(2, "alice", "75"),
        AppendOpts::standard(),
    )?;
    svc.append_path(
        "/wal",
        &set_record(2, "carol", "25"),
        AppendOpts::standard(),
    )?;
    svc.append_path("/wal", &commit_record(2), AppendOpts::forced())?;

    // Transaction 3: in flight when the server dies — never committed.
    svc.append_path("/wal", &set_record(3, "alice", "0"), AppendOpts::standard())?;
    println!("before crash: 2 committed transactions, 1 in flight");

    // CRASH: all RAM state is lost; only the write-once media survive.
    drop(svc);

    // Recovery (§2.3.1): locate the end, rebuild entrymap state, replay
    // the catalog — then the application replays its own history (§4).
    let devices = pool.devices();
    let (svc, report) = LogService::recover(devices, pool.clone(), cfg, clock)?;
    println!(
        "recovered: {} volume(s), {} blocks examined for entrymap reconstruction, {} catalog records",
        report.volumes, report.rebuild_blocks_read, report.catalog_records
    );

    let state = replay(&svc)?;
    println!("replayed committed state:");
    let mut keys: Vec<_> = state.keys().collect();
    keys.sort();
    for k in keys {
        println!("  {k} = {}", state[k]);
    }
    assert_eq!(state.get("alice").map(String::as_str), Some("75"));
    assert_eq!(state.get("carol").map(String::as_str), Some("25"));
    assert!(!state.values().any(|v| v == "0"), "txn 3 must not apply");
    println!("transaction 3's updates were correctly discarded");
    Ok(())
}
