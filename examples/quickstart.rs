//! Quickstart: create a log service, write some entries, read them back —
//! forward, backward, and from a point in time.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use clio::core::service::{AppendOpts, LogService};
use clio::core::ServiceConfig;
use clio::types::{ManualClock, Timestamp, VolumeSeqId};
use clio::volume::MemDevicePool;

fn main() -> clio::types::Result<()> {
    // A fresh volume sequence on an in-memory write-once "optical disk"
    // pool: 1 KiB blocks, entrymap degree N = 16 (the paper's defaults).
    let clock = Arc::new(ManualClock::starting_at(Timestamp::from_secs(1)));
    let svc = LogService::create(
        VolumeSeqId(1),
        Arc::new(MemDevicePool::new(1024, 1 << 16)),
        ServiceConfig::default(),
        clock,
    )?;

    // Log files live in a familiar naming hierarchy (§2.1).
    svc.create_log("/events")?;

    // Append-only writes; each returns the address and the service
    // timestamp that uniquely identifies the entry.
    let mut mid = Timestamp::ZERO;
    for i in 0..10 {
        let r = svc.append_path(
            "/events",
            format!("event number {i}").as_bytes(),
            AppendOpts::standard(),
        )?;
        if i == 5 {
            mid = r.timestamp;
        }
    }
    // A forced write is durable before it returns (§2.3.1).
    svc.append_path("/events", b"important: durable now", AppendOpts::forced())?;

    // Read forward from the beginning…
    let mut cur = svc.cursor("/events")?;
    let all = cur.collect_remaining()?;
    println!("log contains {} entries:", all.len());
    for e in &all {
        println!(
            "  [{}] {}",
            e.effective_ts(),
            String::from_utf8_lossy(&e.data)
        );
    }

    // …backward from the end…
    let mut cur = svc.cursor_from_end("/events")?;
    let last = cur.prev()?.expect("log is not empty");
    println!("newest entry: {}", String::from_utf8_lossy(&last.data));

    // …or from any previous point in time (§2).
    let mut cur = svc.cursor_from_time("/events", mid)?;
    let since = cur.collect_remaining()?;
    println!("{} entries at or after the midpoint timestamp", since.len());

    // Space accounting (§3.5).
    let r = svc.report();
    println!(
        "space: {} entries, {:.1} B avg, header overhead {:.2} B/entry, entrymap overhead {:.3} B/entry",
        r.entries, r.avg_entry_size, r.avg_header_overhead, r.avg_entrymap_overhead
    );
    Ok(())
}
