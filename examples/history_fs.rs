//! The history-based file server (§4.1): files whose permanent state is
//! their update history; current contents are just a cache, and any
//! earlier version can be extracted.
//!
//! Run with: `cargo run --example history_fs`

use std::sync::Arc;

use clio::core::service::LogService;
use clio::core::ServiceConfig;
use clio::history::HistoryFs;
use clio::types::{Clock, ManualClock, Timestamp, VolumeSeqId};
use clio::volume::MemDevicePool;

fn main() -> clio::types::Result<()> {
    let clock = Arc::new(ManualClock::starting_at(Timestamp::from_secs(50)));
    let svc = Arc::new(LogService::create(
        VolumeSeqId(4),
        Arc::new(MemDevicePool::new(1024, 1 << 16)),
        ServiceConfig::default(),
        clock.clone(),
    )?);
    let fs = HistoryFs::attach(svc.clone(), "/fs")?;

    // Edit a document over time.
    fs.create("report.txt")?;
    fs.write_at("report.txt", 0, b"Draft: log files are nice.")?;
    let v1 = clock.now();
    fs.write_at("report.txt", 0, b"Final")?;
    fs.write_at("report.txt", 5, b": log files are essential!")?;
    let v2 = clock.now();
    fs.set_len("report.txt", 31)?;

    println!(
        "current:  {:?}",
        String::from_utf8_lossy(&fs.read("report.txt")?)
    );
    println!(
        "as of v1: {:?}",
        String::from_utf8_lossy(&fs.version_at("report.txt", v1)?.expect("existed at v1"))
    );
    println!(
        "as of v2: {:?}",
        String::from_utf8_lossy(&fs.version_at("report.txt", v2)?.expect("existed at v2"))
    );

    // Deletion removes the current version, not the history (§4: the true
    // state is the execution history).
    fs.create("scratch")?;
    fs.write_at("scratch", 0, b"temporary notes")?;
    let before_delete = clock.now();
    fs.delete("scratch")?;
    println!("scratch exists now: {}", fs.exists("scratch"));
    println!(
        "scratch before deletion: {:?}",
        String::from_utf8_lossy(&fs.version_at("scratch", before_delete)?.expect("was live"))
    );

    // The RAM cache is disposable: rebuild it from the log alone.
    fs.sync()?;
    drop(fs);
    let fs = HistoryFs::attach(svc, "/fs")?;
    println!(
        "after cache rebuild, live files: {:?}, report = {:?}",
        fs.list_live(),
        String::from_utf8_lossy(&fs.read("report.txt")?)
    );
    Ok(())
}
