//! A security audit trail (§1's motivating use): per-user sublogs of one
//! audit log, queried by user, by time, and in aggregate.
//!
//! Run with: `cargo run --example audit_trail`

use std::sync::Arc;

use clio::core::service::{AppendOpts, LogService};
use clio::core::ServiceConfig;
use clio::sim::LoginWorkload;
use clio::types::{ManualClock, Timestamp, VolumeSeqId};
use clio::volume::MemDevicePool;

fn main() -> clio::types::Result<()> {
    let clock = Arc::new(ManualClock::starting_at(Timestamp::from_secs(100)));
    let svc = LogService::create(
        VolumeSeqId(7),
        Arc::new(MemDevicePool::new(1024, 1 << 16)),
        ServiceConfig::default(),
        clock,
    )?;

    // /audit is the whole trail; /audit/userN are sublogs (§2.1): an entry
    // logged in a sublog also belongs to the parent, so the auditor can
    // read everything while each user's trail stays individually cheap to
    // query.
    svc.create_log("/audit")?;
    let mut wl = LoginWorkload::paper_calibrated(1);
    for u in 0..wl.n_users {
        svc.create_log(&format!("/audit/user{u}"))?;
    }

    let mut mid_ts = Timestamp::ZERO;
    let events = wl.events(3000);
    for (i, (user, payload)) in events.iter().enumerate() {
        let r = svc.append_path(
            &format!("/audit/user{user}"),
            payload,
            AppendOpts::standard(),
        )?;
        if i == events.len() / 2 {
            mid_ts = r.timestamp;
        }
    }
    svc.flush()?;

    // Aggregate query: everything in the trail.
    let mut cur = svc.cursor("/audit")?;
    let total = cur.collect_remaining()?.len();
    println!(
        "audit trail holds {total} events across {} users",
        wl.n_users
    );

    // Per-user query: only user3's events, located via the entrymap tree.
    let mut cur = svc.cursor("/audit/user3")?;
    let user3 = cur.collect_remaining()?;
    println!(
        "user3 generated {} events; first: {:?}",
        user3.len(),
        String::from_utf8_lossy(&user3[0].data[..40.min(user3[0].data.len())])
    );

    // Time-bounded query: suspicious-activity review of the second half.
    let mut cur = svc.cursor_from_time("/audit", mid_ts)?;
    let recent = cur.collect_remaining()?;
    println!("{} events at or after the review point", recent.len());

    // Monitoring from the tail backwards: the paper notes most accesses go
    // to recent entries (§1).
    let mut cur = svc.cursor_from_end("/audit")?;
    print!("last 3 events: ");
    for _ in 0..3 {
        if let Some(e) = cur.prev()? {
            print!(
                "[{}] ",
                String::from_utf8_lossy(&e.data[..20.min(e.data.len())])
            );
        }
    }
    println!();

    let r = svc.report();
    println!(
        "space overhead: header {:.2} B/entry, entrymap {:.3} B/entry ({:.3}% of data)",
        r.avg_header_overhead,
        r.avg_entrymap_overhead,
        100.0 * r.avg_entrymap_overhead / r.avg_entry_size
    );
    Ok(())
}
