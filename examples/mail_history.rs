//! The history-based mail system (§4.2): mailboxes are sublogs of /mail;
//! messages are permanently accessible; the directory/query state is a
//! rebuildable cache.
//!
//! Run with: `cargo run --example mail_history`

use std::sync::Arc;

use clio::core::service::LogService;
use clio::core::ServiceConfig;
use clio::history::MailSystem;
use clio::sim::MailWorkload;
use clio::types::{ManualClock, Timestamp, VolumeSeqId};
use clio::volume::MemDevicePool;

fn main() -> clio::types::Result<()> {
    let clock = Arc::new(ManualClock::starting_at(Timestamp::from_secs(1000)));
    let svc = Arc::new(LogService::create(
        VolumeSeqId(5),
        Arc::new(MemDevicePool::new(1024, 1 << 16)),
        ServiceConfig::default(),
        clock,
    )?);
    let mail = MailSystem::attach(svc.clone(), "/mail")?;

    let users = ["smith", "jones", "garcia"];
    for u in users {
        mail.create_mailbox(u)?;
    }

    // A burst of generated deliveries (forced writes — mail must survive a
    // crash the moment delivery is acknowledged).
    let mut wl = MailWorkload::new(99, users.len());
    let mut checkpoint = Timestamp::ZERO;
    for (i, (to, subject, body)) in wl.deliveries(30).into_iter().enumerate() {
        let ts = mail.deliver(users[to], &subject, &body)?;
        if i == 20 {
            checkpoint = ts;
        }
    }

    for u in users {
        let listing = mail.list(u)?;
        println!("{u}: {} messages", listing.len());
    }
    let first = mail.read("smith", 0)?;
    println!(
        "smith's first message: {:?} ({} bytes)",
        first.subject,
        first.body.len()
    );

    // Time queries run straight off the history (§4.2).
    let recent = mail.since("smith", checkpoint)?;
    println!("smith has {} messages since the checkpoint", recent.len());

    // The mail agent restarts; its pointers and caches are rebuilt from
    // the mail history — no message is ever lost.
    drop(mail);
    let mail = MailSystem::attach(svc, "/mail")?;
    println!(
        "after agent restart: mailboxes = {:?}, smith still has {} messages",
        mail.mailboxes()?,
        mail.list("smith")?.len()
    );
    Ok(())
}
